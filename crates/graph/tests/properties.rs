//! Property-based tests for the graph substrate.

use lca_graph::gen::{GnmBuilder, GnpBuilder, RegularBuilder};
use lca_graph::{analysis, io, GraphBuilder, VertexId};
use lca_rand::Seed;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The two probe views agree: the i-th neighbor of v reports v at the
    /// index the adjacency probe returns, and degree equals list length.
    #[test]
    fn probe_views_are_coherent(n in 2usize..60, p in 0.0f64..0.6, seed in any::<u64>()) {
        let g = GnpBuilder::new(n, p).seed(Seed::new(seed)).build();
        for v in g.vertices() {
            prop_assert_eq!(g.degree(v), g.neighbors(v).len());
            for (i, &w) in g.neighbors(v).iter().enumerate() {
                prop_assert_eq!(g.adjacency_index(v, w), Some(i));
                // Undirectedness: the reverse arc exists too.
                prop_assert!(g.adjacency_index(w, v).is_some());
            }
            prop_assert_eq!(g.neighbor(v, g.degree(v)), None);
        }
    }

    /// Handshake lemma and symmetric edge iteration.
    #[test]
    fn degree_sum_is_twice_edges(n in 2usize..80, p in 0.0f64..0.5, seed in any::<u64>()) {
        let g = GnpBuilder::new(n, p).seed(Seed::new(seed)).build();
        let sum: usize = g.vertices().map(|v| g.degree(v)).sum();
        prop_assert_eq!(sum, 2 * g.edge_count());
        for (u, v) in g.edges() {
            prop_assert!(u.index() < v.index());
            prop_assert!(g.has_edge(u, v) && g.has_edge(v, u));
        }
    }

    /// G(n, m) hits its edge count exactly and stays simple.
    #[test]
    fn gnm_has_exact_size(n in 3usize..50, frac in 0.0f64..0.9, seed in any::<u64>()) {
        let max = n * (n - 1) / 2;
        let m = (frac * max as f64) as usize;
        let g = GnmBuilder::new(n, m).seed(Seed::new(seed)).build();
        prop_assert_eq!(g.edge_count(), m);
    }

    /// Random regular graphs are exactly regular.
    #[test]
    fn regular_graphs_are_regular(n in 6usize..60, d in 1usize..5, seed in any::<u64>()) {
        prop_assume!(n * d % 2 == 0 && d < n);
        let g = RegularBuilder::new(n, d).seed(Seed::new(seed)).build().unwrap();
        prop_assert!(g.vertices().all(|v| g.degree(v) == d));
    }

    /// Edge-list round-trip is probe-for-probe lossless.
    #[test]
    fn io_roundtrip(n in 1usize..40, p in 0.0f64..0.5, seed in any::<u64>()) {
        let g = GnpBuilder::new(n, p)
            .seed(Seed::new(seed))
            .shuffle_labels(true)
            .build();
        let back = io::roundtrip(&g).unwrap();
        prop_assert!(io::probe_equivalent(&g, &back));
    }

    /// Component labels agree with pairwise reachability (spot check).
    #[test]
    fn components_match_reachability(n in 2usize..40, p in 0.0f64..0.2, seed in any::<u64>()) {
        let g = GnpBuilder::new(n, p).seed(Seed::new(seed)).build();
        let (labels, _) = analysis::connected_components(&g);
        let d0 = analysis::bfs_distances(&g, VertexId::new(0));
        for v in g.vertices() {
            let reachable = d0[v.index()] != u32::MAX;
            prop_assert_eq!(reachable, labels[v.index()] == labels[0]);
        }
    }

    /// Builder validation refuses anything non-simple, regardless of input
    /// order.
    #[test]
    fn builder_rejects_duplicates(n in 2usize..20, a in 0usize..20, b in 0usize..20) {
        prop_assume!(a < n && b < n && a != b);
        let r = GraphBuilder::new(n).edge(a, b).edge(b, a).build();
        prop_assert!(r.is_err());
    }

    /// Shuffled adjacency preserves the neighbor multiset.
    #[test]
    fn shuffle_preserves_sets(n in 3usize..40, p in 0.1f64..0.6, s1 in any::<u64>(), s2 in any::<u64>()) {
        let base = GnpBuilder::new(n, p).seed(Seed::new(s1)).shuffle_adjacency(false).build();
        let edges: Vec<(usize, usize)> = base.edges().map(|(u, v)| (u.index(), v.index())).collect();
        let shuffled = GraphBuilder::new(n)
            .edges(edges.iter().copied())
            .shuffle_adjacency(Seed::new(s2))
            .build()
            .unwrap();
        for v in base.vertices() {
            let mut a: Vec<u32> = base.neighbors(v).iter().map(|w| w.raw()).collect();
            let mut b: Vec<u32> = shuffled.neighbors(v).iter().map(|w| w.raw()).collect();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }
    }
}
