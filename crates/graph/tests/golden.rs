//! Generator-determinism golden tests: seeded edge-set fingerprints for
//! every randomized builder and implicit family.
//!
//! Generation is a pure function of the seed, threaded through `lca-rand`
//! (SplitMix64 streams, seed derivation) and — for the geometric-skipping
//! generators and Chung–Lu weights — `f64` arithmetic including `ln`/`powf`
//! from the platform libm. These fingerprints pin the exact output so any
//! drift (a reordered `derive` tag, a changed mixing constant, a libm whose
//! `powf` rounds differently) is caught by CI instead of silently changing
//! every downstream experiment. If a change here is *intentional*, update
//! the constants and say so in the changelog: it invalidates recorded
//! bench results.

// Progress/report lines on stdout are this target's output channel.
#![allow(clippy::print_stdout)]
use lca_graph::gen::{ChungLuBuilder, GnmBuilder, GnpBuilder, RegularBuilder};
use lca_graph::implicit::{ImplicitChungLu, ImplicitGnp, ImplicitOracle, ImplicitRegular};
use lca_graph::Graph;
use lca_rand::Seed;

/// Order-sensitive fold of `(n, m, edges…)` through the SplitMix64 mixer.
fn fingerprint(g: &Graph) -> u64 {
    let mut h: u64 = 0x243F_6A88_85A3_08D3; // π, nothing up the sleeve
    let mut absorb = |x: u64| {
        h = lca_rand::SplitMix64::new(h ^ x).next_u64();
    };
    absorb(g.vertex_count() as u64);
    absorb(g.edge_count() as u64);
    for (u, v) in g.edges() {
        absorb(((u.raw() as u64) << 32) | v.raw() as u64);
    }
    h
}

const SEED: u64 = 0xA11CE;

#[test]
fn gnp_fingerprint_is_stable() {
    let g = GnpBuilder::new(512, 0.05).seed(Seed::new(SEED)).build();
    assert_eq!(fingerprint(&g), GOLDEN_GNP, "GnpBuilder output drifted");
}

#[test]
fn gnm_fingerprint_is_stable() {
    let g = GnmBuilder::new(512, 2000).seed(Seed::new(SEED)).build();
    assert_eq!(fingerprint(&g), GOLDEN_GNM, "GnmBuilder output drifted");
}

#[test]
fn regular_fingerprint_is_stable() {
    let g = RegularBuilder::new(512, 6)
        .seed(Seed::new(SEED))
        .build()
        .unwrap();
    assert_eq!(
        fingerprint(&g),
        GOLDEN_REGULAR,
        "RegularBuilder output drifted"
    );
}

#[test]
fn chung_lu_fingerprint_is_stable() {
    let g = ChungLuBuilder::power_law(512, 2.5, 8.0)
        .seed(Seed::new(SEED))
        .build();
    assert_eq!(
        fingerprint(&g),
        GOLDEN_CHUNG_LU,
        "ChungLuBuilder output drifted"
    );
}

#[test]
fn implicit_fingerprints_are_stable() {
    let g = ImplicitGnp::new(512, 4.0, Seed::new(SEED)).materialize();
    assert_eq!(fingerprint(&g), GOLDEN_IMPLICIT_GNP, "ImplicitGnp drifted");
    let g = ImplicitRegular::new(512, 4, Seed::new(SEED)).materialize();
    assert_eq!(
        fingerprint(&g),
        GOLDEN_IMPLICIT_REGULAR,
        "ImplicitRegular drifted"
    );
    let g = ImplicitChungLu::power_law(512, 2.5, 6.0, Seed::new(SEED)).materialize();
    assert_eq!(
        fingerprint(&g),
        GOLDEN_IMPLICIT_CHUNG_LU,
        "ImplicitChungLu drifted"
    );
}

#[test]
#[ignore = "helper: prints current fingerprints for updating the goldens"]
fn print_fingerprints() {
    let gnp = GnpBuilder::new(512, 0.05).seed(Seed::new(SEED)).build();
    let gnm = GnmBuilder::new(512, 2000).seed(Seed::new(SEED)).build();
    let reg = RegularBuilder::new(512, 6)
        .seed(Seed::new(SEED))
        .build()
        .unwrap();
    let cl = ChungLuBuilder::power_law(512, 2.5, 8.0)
        .seed(Seed::new(SEED))
        .build();
    let ignp = ImplicitGnp::new(512, 4.0, Seed::new(SEED)).materialize();
    let ireg = ImplicitRegular::new(512, 4, Seed::new(SEED)).materialize();
    let icl = ImplicitChungLu::power_law(512, 2.5, 6.0, Seed::new(SEED)).materialize();
    println!("const GOLDEN_GNP: u64 = {:#018x};", fingerprint(&gnp));
    println!("const GOLDEN_GNM: u64 = {:#018x};", fingerprint(&gnm));
    println!("const GOLDEN_REGULAR: u64 = {:#018x};", fingerprint(&reg));
    println!("const GOLDEN_CHUNG_LU: u64 = {:#018x};", fingerprint(&cl));
    println!(
        "const GOLDEN_IMPLICIT_GNP: u64 = {:#018x};",
        fingerprint(&ignp)
    );
    println!(
        "const GOLDEN_IMPLICIT_REGULAR: u64 = {:#018x};",
        fingerprint(&ireg)
    );
    println!(
        "const GOLDEN_IMPLICIT_CHUNG_LU: u64 = {:#018x};",
        fingerprint(&icl)
    );
}

const GOLDEN_GNP: u64 = 0xb158_06b6_6e00_3255;
const GOLDEN_GNM: u64 = 0x1977_0f86_5ee2_bd0c;
const GOLDEN_REGULAR: u64 = 0x392b_93cc_3ec8_cd0e;
const GOLDEN_CHUNG_LU: u64 = 0xe3ef_cc1a_5e2a_c480;
const GOLDEN_IMPLICIT_GNP: u64 = 0x075e_4f3f_bb2f_7f7a;
const GOLDEN_IMPLICIT_REGULAR: u64 = 0x5631_5059_81c6_dcbd;
const GOLDEN_IMPLICIT_CHUNG_LU: u64 = 0x99ae_f65c_8af8_e256;
