//! A hand-rolled Rust token scanner, string/comment/raw-string aware.
//!
//! This is not a full Rust lexer — it is exactly enough lexer for the
//! invariant rules: it never confuses `unsafe` inside a string literal or
//! comment with the keyword, it survives raw strings with arbitrary hash
//! fences (`r##"…"##`), nested block comments, byte strings, and the
//! char-literal/lifetime ambiguity (`'a'` vs `<'a>`), and it records the
//! line of every token so findings point somewhere clickable. Comments are
//! not discarded: they come back out-of-band because the waiver grammar
//! (`// lint:allow(rule) — reason`) lives in them.

/// What a token is; `text` disambiguates within a kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw `r#ident`, stored unprefixed).
    Ident,
    /// `'a` — never a char literal.
    Lifetime,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`); `text` is
    /// the unquoted content.
    Str,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// Numeric literal (integer part only; `1.5` lexes as `1` `.` `5`,
    /// which is fine for structural rules).
    Num,
    /// Any other single character (`.`, `[`, `!`, …).
    Punct,
}

/// One token with its 1-indexed source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Identifier word, literal content, or punctuation character.
    pub text: String,
    /// 1-indexed source line the token starts on.
    pub line: u32,
}

impl Tok {
    /// `true` when the token is the identifier `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokKind::Ident && self.text == word
    }

    /// `true` when the token is the punctuation character `ch`.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(ch)
    }
}

/// A comment with the 1-indexed line it *starts* on.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-indexed line the comment starts on.
    pub line: u32,
    /// Comment text including the `//` / `/*` sigils' interior.
    pub text: String,
}

/// The lexed form of one source file.
#[derive(Debug, Default)]
pub struct FileLex {
    /// All tokens in source order.
    pub tokens: Vec<Tok>,
    /// All comments in source order, kept for the waiver grammar.
    pub comments: Vec<Comment>,
}

/// Lexes `src` (panics never; unterminated constructs run to EOF).
pub fn lex(src: &str) -> FileLex {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: FileLex::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: FileLex,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.tokens.push(Tok { kind, text, line });
    }

    fn run(mut self) -> FileLex {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => {
                    let s = self.string_literal();
                    self.push(TokKind::Str, s, line);
                }
                'b' if self.peek(1) == Some('"') => {
                    self.bump();
                    let s = self.string_literal();
                    self.push(TokKind::Str, s, line);
                }
                'b' if self.peek(1) == Some('\'') => {
                    self.bump();
                    self.char_literal();
                    self.push(TokKind::Char, String::new(), line);
                }
                'r' | 'b' if self.raw_string_ahead() => {
                    let s = self.raw_string_literal();
                    self.push(TokKind::Str, s, line);
                }
                'r' if self.peek(1) == Some('#') && Self::ident_start(self.peek(2)) => {
                    // Raw identifier: `r#ident` — strip the prefix so rules
                    // compare against the bare word. (`r#"…"` was handled
                    // above; the quote is not an ident start.)
                    self.bump();
                    self.bump();
                    let word = self.ident();
                    self.push(TokKind::Ident, word, line);
                }
                '\'' => self.quote(line),
                c if Self::ident_start(Some(c)) => {
                    let word = self.ident();
                    self.push(TokKind::Ident, word, line);
                }
                c if c.is_ascii_digit() => {
                    let mut text = String::new();
                    while let Some(d) = self.peek(0) {
                        if d.is_ascii_alphanumeric() || d == '_' {
                            text.push(d);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.push(TokKind::Num, text, line);
                }
                c => {
                    self.bump();
                    self.push(TokKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    fn ident_start(c: Option<char>) -> bool {
        matches!(c, Some(c) if c.is_alphabetic() || c == '_')
    }

    fn ident(&mut self) -> String {
        let mut word = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                word.push(c);
                self.bump();
            } else {
                break;
            }
        }
        word
    }

    /// `'x'` / `'\n'` is a char literal; `'a` (no closing quote right
    /// after one element) is a lifetime. Escapes always mean char.
    fn quote(&mut self, line: u32) {
        match self.peek(1) {
            Some('\\') => {
                self.char_literal();
                self.push(TokKind::Char, String::new(), line);
            }
            Some(c) if (c.is_alphanumeric() || c == '_') && self.peek(2) != Some('\'') => {
                self.bump(); // the quote
                let word = self.ident();
                self.push(TokKind::Lifetime, word, line);
            }
            _ => {
                self.char_literal();
                self.push(TokKind::Char, String::new(), line);
            }
        }
    }

    /// Consumes a char literal from the opening quote (escape-aware).
    fn char_literal(&mut self) {
        self.bump(); // opening '
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => return,
                _ => {}
            }
        }
    }

    /// Consumes a string literal from the opening quote; returns content.
    fn string_literal(&mut self) -> String {
        self.bump(); // opening "
        let mut content = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    if let Some(esc) = self.bump() {
                        content.push('\\');
                        content.push(esc);
                    }
                }
                '"' => break,
                _ => content.push(c),
            }
        }
        content
    }

    /// `true` when the cursor sits on `r"`, `r#…#"`, `br"` or `br#…#"`.
    fn raw_string_ahead(&self) -> bool {
        let mut i = 1; // past the 'r' or 'b'
        if self.peek(0) == Some('b') {
            if self.peek(1) != Some('r') {
                return false;
            }
            i = 2;
        }
        while self.peek(i) == Some('#') {
            i += 1;
        }
        self.peek(i) == Some('"')
    }

    /// Consumes `r#"…"#` (any hash count, `br` included); returns content.
    fn raw_string_literal(&mut self) -> String {
        if self.peek(0) == Some('b') {
            self.bump();
        }
        self.bump(); // the 'r'
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        let mut content = String::new();
        while let Some(c) = self.bump() {
            if c == '"' {
                // A quote closes only when followed by the full fence.
                let mut matched = 0usize;
                while matched < hashes && self.peek(matched) == Some('#') {
                    matched += 1;
                }
                if matched == hashes {
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
            }
            content.push(c);
        }
        content
    }

    fn line_comment(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment { line, text });
    }

    /// Block comments nest, per the Rust grammar.
    fn block_comment(&mut self, line: u32) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.bump() {
            text.push(c);
            if c == '/' && self.peek(0) == Some('*') {
                depth += 1;
                text.push('*');
                self.bump();
            } else if c == '*' && self.peek(0) == Some('/') {
                depth -= 1;
                text.push('/');
                self.bump();
                if depth == 0 {
                    break;
                }
            }
        }
        self.out.comments.push(Comment { line, text });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn unsafe_in_strings_and_comments_is_not_a_token() {
        let src = r###"
            // unsafe in a line comment
            /* unsafe in a /* nested */ block comment */
            let a = "unsafe";
            let b = r#"unsafe"#;
            let c = br##"unsafe with "quotes" inside"##;
            let d = b"unsafe";
        "###;
        assert!(!idents(src).iter().any(|w| w == "unsafe"));
        let lexed = lex(src);
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| t.kind == TokKind::Str)
                .count(),
            4
        );
        assert_eq!(lexed.comments.len(), 2);
    }

    #[test]
    fn real_unsafe_keyword_is_seen() {
        assert!(idents("unsafe { ptr::read(p) }")
            .iter()
            .any(|w| w == "unsafe"));
        // A raw identifier is the same word to the rules.
        assert!(idents("let r#unsafe = 1;").iter().any(|w| w == "unsafe"));
    }

    #[test]
    fn lifetimes_do_not_eat_the_following_code() {
        let toks = lex("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(toks
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "a"));
        // The char literal 'a' is distinct from the lifetime 'a.
        let toks = lex("let c = 'a'; let s: &'a str;");
        assert_eq!(
            toks.tokens
                .iter()
                .filter(|t| t.kind == TokKind::Char)
                .count(),
            1
        );
        assert!(toks.tokens.iter().any(|t| t.kind == TokKind::Lifetime));
    }

    #[test]
    fn escaped_quotes_and_escaped_chars_stay_inside_literals() {
        let toks = lex(r#"let s = "she said \"unsafe\""; let c = '\''; next"#);
        assert!(toks.tokens.iter().any(|t| t.is_ident("next")));
        assert!(!toks.tokens.iter().any(|t| t.is_ident("unsafe")));
    }

    #[test]
    fn lines_are_tracked_across_multiline_constructs() {
        let src = "let a = \"x\ny\";\nlet b = 1; /* c\nc */ let d = 2;";
        let toks = lex(src);
        let b = toks.tokens.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 3);
        let d = toks.tokens.iter().find(|t| t.is_ident("d")).unwrap();
        assert_eq!(d.line, 4);
    }
}
