//! `lca-lint` — the workspace invariant checker.
//!
//! The serving stack multiplexes thousands of connections through one
//! reactor thread, a worker pool, sharded registries, and lock-free
//! counters; the paper-level guarantee (enforceable per-query budgets)
//! only holds if no panic path can bypass the meter and no stray fence or
//! stale flag read can wedge the loop. Those repo invariants used to live
//! in CHANGES.md prose; this crate turns them into a machine-enforced,
//! versioned catalog (`lint.toml`):
//!
//! * **R1 unsafe-confinement** — the token `unsafe` is legal only in the
//!   sanctioned module(s); every other crate root pins
//!   `#![forbid(unsafe_code)]`.
//! * **R2 hot-path panic ban** — `unwrap`/`expect`/`panic!`/`todo!`/
//!   `unreachable!`/bare slice indexing are banned in designated hot-path
//!   modules, modulo justified waivers.
//! * **R3 atomic-ordering audit** — every `Ordering::X` matches a
//!   per-file allowlist; `SeqCst` off sanctioned flags and `Relaxed` on
//!   anything flag-named are flagged outright.
//! * **R4 lock-across-call** — a `.lock()` guard alive across an
//!   oracle/query call serializes callers; the MemoOracle exactly-once
//!   pattern is the waiver-sanctioned exception.
//! * **R5 protocol-docs drift** — wire literals in the protocol sources
//!   and the machine-readable field table in `docs/PROTOCOL.md` must be
//!   the same set, both directions.
//!
//! Everything is std-only, built on a hand-rolled lexer
//! ([`lexer`]) rather than text matching, so `r#"unsafe"#` in a string
//! can never trip R1.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;

use std::path::{Path, PathBuf};

use config::Config;
use rules::{Finding, SourceFile};

/// Directories never walked (build output, VCS, and the lint fixtures,
/// which are violating-on-purpose).
const SKIP_DIRS: [&str; 5] = ["target", ".git", "fixtures", "bench-results", ".github"];

/// Recursively collects workspace `.rs` files under `root`, repo-relative
/// with forward slashes, deterministically sorted.
pub fn walk_workspace(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Lints the workspace at `root` under `config`: walks, lexes, runs every
/// rule. The protocol doc is read relative to `root`.
pub fn lint_workspace(root: &Path, config: &Config) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    for path in walk_workspace(root)? {
        let content = std::fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        files.push(SourceFile::new(rel, &content));
    }
    let doc_text = config
        .str("docs", "protocol")
        .and_then(|p| std::fs::read_to_string(root.join(p)).ok());
    Ok(rules::run_rules(config, &files, doc_text.as_deref()))
}
