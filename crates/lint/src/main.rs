//! CLI for the workspace invariant checker.
//!
//! ```text
//! lca-lint [--root DIR] [--config lint.toml] [--check]
//!          [--baseline FILE] [--write-baseline FILE] [--fix-waivers]
//! ```
//!
//! Exit codes: 0 clean (or all findings baselined), 1 fresh findings with
//! `--check`, 2 usage/configuration error. Output is deterministic —
//! sorted by path, line, rule — so CI diffs are stable.

#![forbid(unsafe_code)]
#![allow(clippy::print_stdout)] // the CLI's entire job is stdout

use std::path::PathBuf;
use std::process::ExitCode;

use lca_lint::config::Config;
use lca_lint::{lint_workspace, report};

struct Args {
    root: PathBuf,
    config: PathBuf,
    check: bool,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    fix_waivers: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        config: PathBuf::from("lint.toml"),
        check: false,
        baseline: None,
        write_baseline: None,
        fix_waivers: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .map(PathBuf::from)
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--root" => args.root = value("--root")?,
            "--config" => args.config = value("--config")?,
            "--check" => args.check = true,
            "--baseline" => args.baseline = Some(value("--baseline")?),
            "--write-baseline" => args.write_baseline = Some(value("--write-baseline")?),
            "--fix-waivers" => args.fix_waivers = true,
            "--help" | "-h" => {
                return Err(
                    "usage: lca-lint [--root DIR] [--config lint.toml] [--check] \
                            [--baseline FILE] [--write-baseline FILE] [--fix-waivers]"
                        .to_owned(),
                )
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("lca-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    let config_path = if args.config.is_absolute() {
        args.config.clone()
    } else {
        args.root.join(&args.config)
    };
    let config = match Config::load(&config_path) {
        Ok(config) => config,
        Err(msg) => {
            eprintln!("lca-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    let findings = match lint_workspace(&args.root, &config) {
        Ok(findings) => findings,
        Err(e) => {
            eprintln!("lca-lint: walk failed: {e}");
            return ExitCode::from(2);
        }
    };
    let total = findings.len();

    if let Some(path) = &args.write_baseline {
        if let Err(e) = std::fs::write(path, report::render_baseline(&findings)) {
            eprintln!("lca-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    let baseline_text = match &args.baseline {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("lca-lint: cannot read baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        },
        None => String::new(),
    };
    let screened = report::screen(findings, &baseline_text);

    print!("{}", report::render(&screened.fresh));
    if args.fix_waivers {
        print!("{}", report::render_waiver_scaffold(&screened.fresh));
    }
    println!(
        "lca-lint: {} finding(s) — {} fresh, {} baselined, {} stale baseline entr{}",
        total,
        screened.fresh.len(),
        screened.baselined,
        screened.stale,
        if screened.stale == 1 { "y" } else { "ies" },
    );
    if screened.stale > 0 {
        println!(
            "lca-lint: stale entries are fixed debt — shrink the committed baseline \
             (regenerate with --write-baseline)"
        );
    }
    if args.check && !screened.fresh.is_empty() {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
