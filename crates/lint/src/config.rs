//! `lint.toml` — the versioned invariant catalog.
//!
//! Parsed by a deliberately small TOML subset reader (same no-external-deps
//! ethos as the serde shim): `[section]` and `[section."quoted.key"]`
//! headers, `key = "string"`, `key = integer`, and `key = ["a", "b"]`
//! arrays of strings, with `#` comments. That subset is the whole grammar
//! the catalog needs; anything else is a hard error so a typo cannot
//! silently disable a rule.

use std::collections::BTreeMap;

/// One section's key → value map.
pub type Section = BTreeMap<String, Value>;

/// A parsed value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A quoted string.
    Str(String),
    /// A bare integer.
    Int(i64),
    /// An array of quoted strings.
    List(Vec<String>),
}

impl Value {
    /// The string inside, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer inside, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The list inside, if this is a list.
    pub fn as_list(&self) -> Option<&[String]> {
        match self {
            Value::List(v) => Some(v),
            _ => None,
        }
    }
}

/// The whole catalog: section name → keys. Dotted-quoted headers like
/// `[atomics."crates/serve/src/metrics.rs"]` keep the quoted part verbatim
/// as `atomics.crates/serve/src/metrics.rs`.
#[derive(Debug, Default)]
pub struct Config {
    /// Section name → parsed key/value map (root keys live under `""`).
    pub sections: BTreeMap<String, Section>,
}

impl Config {
    /// Parses catalog text; `Err` carries the offending line.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut config = Config::default();
        let mut current = String::new();
        let mut lines = text.lines().enumerate();
        while let Some((lineno, raw)) = lines.next() {
            let mut line = strip_comment(raw).trim().to_owned();
            if line.is_empty() {
                continue;
            }
            // Multi-line arrays: keep accumulating until the bracket closes.
            if line.contains('[') && !line.starts_with('[') && !line.contains(']') {
                for (_, cont) in lines.by_ref() {
                    line.push(' ');
                    line.push_str(strip_comment(cont).trim());
                    if line.contains(']') {
                        break;
                    }
                }
            }
            let line = line.as_str();
            if let Some(rest) = line.strip_prefix('[') {
                let Some(header) = rest.strip_suffix(']') else {
                    return Err(format!("line {}: unterminated section header", lineno + 1));
                };
                current = parse_header(header)
                    .ok_or_else(|| format!("line {}: malformed section header", lineno + 1))?;
                config.sections.entry(current.clone()).or_default();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {}: expected `key = value`", lineno + 1));
            };
            let value = parse_value(value.trim())
                .ok_or_else(|| format!("line {}: unsupported value syntax", lineno + 1))?;
            config
                .sections
                .entry(current.clone())
                .or_default()
                .insert(key.trim().to_owned(), value);
        }
        Ok(config)
    }

    /// Loads and parses a catalog file.
    pub fn load(path: &std::path::Path) -> Result<Config, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::parse(&text)
    }

    /// The string list at `section.key`, empty when absent.
    pub fn list(&self, section: &str, key: &str) -> Vec<String> {
        self.sections
            .get(section)
            .and_then(|s| s.get(key))
            .and_then(Value::as_list)
            .map(<[String]>::to_vec)
            .unwrap_or_default()
    }

    /// The string at `section.key`.
    pub fn str(&self, section: &str, key: &str) -> Option<&str> {
        self.sections
            .get(section)
            .and_then(|s| s.get(key))
            .and_then(Value::as_str)
    }

    /// The integer at `section.key`.
    pub fn int(&self, section: &str, key: &str) -> Option<i64> {
        self.sections
            .get(section)
            .and_then(|s| s.get(key))
            .and_then(Value::as_int)
    }
}

/// Strips a trailing `#` comment, respecting `"…"` strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

/// `atomics."a/b.rs"` → `atomics.a/b.rs`; bare `name` stays itself.
fn parse_header(header: &str) -> Option<String> {
    let header = header.trim();
    match header.split_once('.') {
        None => {
            if header.is_empty() || header.contains('"') {
                None
            } else {
                Some(header.to_owned())
            }
        }
        Some((base, quoted)) => {
            let quoted = quoted.trim();
            let inner = quoted.strip_prefix('"')?.strip_suffix('"')?;
            Some(format!("{}.{inner}", base.trim()))
        }
    }
}

fn parse_value(text: &str) -> Option<Value> {
    if let Some(rest) = text.strip_prefix('[') {
        let inner = rest.strip_suffix(']')?.trim();
        if inner.is_empty() {
            return Some(Value::List(Vec::new()));
        }
        let mut items = Vec::new();
        for item in inner.split(',') {
            let item = item.trim();
            if item.is_empty() {
                continue; // trailing comma
            }
            items.push(item.strip_prefix('"')?.strip_suffix('"')?.to_owned());
        }
        return Some(Value::List(items));
    }
    if let Some(rest) = text.strip_prefix('"') {
        return Some(Value::Str(rest.strip_suffix('"')?.to_owned()));
    }
    text.parse::<i64>().ok().map(Value::Int)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_catalog_shapes() {
        let cfg = Config::parse(
            r#"
            version = 1
            [hot_paths]
            files = ["a.rs", "b.rs"] # trailing comment
            max_waivers_panic = 24
            [atomics."crates/serve/src/metrics.rs"]
            allow = ["Relaxed"]
            note = "histogram counters"
            "#,
        )
        .unwrap();
        assert_eq!(cfg.int("", "version"), Some(1));
        assert_eq!(cfg.list("hot_paths", "files"), vec!["a.rs", "b.rs"]);
        assert_eq!(cfg.int("hot_paths", "max_waivers_panic"), Some(24));
        assert_eq!(
            cfg.list("atomics.crates/serve/src/metrics.rs", "allow"),
            vec!["Relaxed"]
        );
        assert_eq!(
            cfg.str("atomics.crates/serve/src/metrics.rs", "note"),
            Some("histogram counters")
        );
    }

    #[test]
    fn rejects_what_it_does_not_understand() {
        assert!(Config::parse("[broken").is_err());
        assert!(Config::parse("key value").is_err());
        assert!(Config::parse("key = { a = 1 }").is_err());
    }
}
