//! The invariant catalog: rules R1–R5 over lexed source files.
//!
//! Every rule reads the token stream from [`crate::lexer`] — never raw
//! text — so string literals and comments can't spoof a violation, and
//! every rule honors the shared waiver grammar:
//!
//! ```text
//! // lint:allow(rule) — reason
//! ```
//!
//! on the flagged line or the line directly above it, where `rule` is one
//! of `panic`, `atomic`, `lock`, and the reason is mandatory. Waivers are
//! counted and capped (`[waivers]` in `lint.toml`); the cap turns "just
//! waive it" from a habit into a budget.

use std::collections::{BTreeMap, BTreeSet};

use crate::config::Config;
use crate::lexer::{lex, FileLex, Tok, TokKind};

/// One rule violation, pointing at a file line.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// 1-indexed line.
    pub line: u32,
    /// Stable rule id (`R1/unsafe` … `R5/docs`, `W/waiver`).
    pub rule: &'static str,
    /// Human message; also the baseline-matching key together with
    /// rule + path (line numbers deliberately excluded so baselines
    /// survive unrelated edits above a grandfathered site).
    pub message: String,
}

impl Finding {
    /// The line-number-free identity used by baselines.
    pub fn baseline_key(&self) -> String {
        format!("{}\t{}\t{}", self.rule, self.path, self.message)
    }
}

/// A parsed `lint:allow(tag)` waiver.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Line the waiver comment starts on.
    pub line: u32,
    /// The rule tag inside `lint:allow(…)`.
    pub tag: String,
    /// Whether a non-trivial reason follows the tag (required).
    pub has_reason: bool,
    /// A standalone comment covers the line below it; a trailing comment
    /// covers only its own line. Without the distinction, a trailing
    /// waiver would silently spill onto the next statement.
    pub standalone: bool,
}

/// One source file, lexed and annotated for the rules.
pub struct SourceFile {
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// The token stream and comments.
    pub lex: FileLex,
    /// `#[cfg(test)]` line ranges (inclusive); rules scoped to production
    /// code skip findings inside them.
    pub test_regions: Vec<(u32, u32)>,
    /// Every `lint:allow` waiver found in comments.
    pub waivers: Vec<Waiver>,
    /// Brace depth at each token (before consuming the token).
    depth: Vec<i32>,
}

impl SourceFile {
    /// Lexes `content` and precomputes test regions, waivers, depths.
    pub fn new(path: impl Into<String>, content: &str) -> SourceFile {
        let lexed = lex(content);
        let mut depth = Vec::with_capacity(lexed.tokens.len());
        let mut d = 0i32;
        for tok in &lexed.tokens {
            depth.push(d);
            if tok.is_punct('{') {
                d += 1;
            } else if tok.is_punct('}') {
                d -= 1;
            }
        }
        let test_regions = find_test_regions(&lexed.tokens);
        let waivers = find_waivers(&lexed);
        SourceFile {
            path: path.into(),
            lex: lexed,
            test_regions,
            waivers,
            depth,
        }
    }

    fn in_test(&self, line: u32) -> bool {
        self.test_regions
            .iter()
            .any(|&(lo, hi)| lo <= line && line <= hi)
    }

    /// A well-formed waiver for `tag`: trailing on the same line, or a
    /// standalone comment on the line directly above.
    fn waived(&self, line: u32, tag: &str) -> bool {
        self.waivers.iter().any(|w| {
            w.tag == tag
                && w.has_reason
                && if w.standalone {
                    w.line + 1 == line
                } else {
                    w.line == line
                }
        })
    }

    /// Identifiers of the statement a token belongs to, scanning backward
    /// from `idx` to the nearest statement boundary (`;`, `{`, `}`).
    fn statement_idents_before(&self, idx: usize) -> BTreeSet<&str> {
        let mut idents = BTreeSet::new();
        for tok in self.lex.tokens[..idx].iter().rev().take(48) {
            if tok.is_punct(';') || tok.is_punct('{') || tok.is_punct('}') {
                break;
            }
            if tok.kind == TokKind::Ident {
                idents.insert(tok.text.as_str());
            }
        }
        idents
    }
}

/// Locates `#[cfg(test)]`-gated items and returns their line spans.
fn find_test_regions(tokens: &[Tok]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let start_line = tokens[i].line;
            // Find the attribute's closing bracket and check its idents.
            let mut j = i + 2;
            let mut bracket = 1i32;
            let (mut saw_cfg, mut saw_test) = (false, false);
            while j < tokens.len() && bracket > 0 {
                let t = &tokens[j];
                if t.is_punct('[') {
                    bracket += 1;
                } else if t.is_punct(']') {
                    bracket -= 1;
                } else if t.is_ident("cfg") {
                    saw_cfg = true;
                } else if t.is_ident("test") {
                    saw_test = true;
                }
                j += 1;
            }
            if saw_cfg && saw_test {
                // Skip any further attributes, then span the gated item:
                // everything to its closing brace (or terminating `;`).
                while j < tokens.len()
                    && tokens[j].is_punct('#')
                    && tokens.get(j + 1).is_some_and(|t| t.is_punct('['))
                {
                    let mut b = 1i32;
                    let mut k = j + 2;
                    while k < tokens.len() && b > 0 {
                        if tokens[k].is_punct('[') {
                            b += 1;
                        } else if tokens[k].is_punct(']') {
                            b -= 1;
                        }
                        k += 1;
                    }
                    j = k;
                }
                let mut brace = 0i32;
                let mut end_line = tokens.get(j).map_or(start_line, |t| t.line);
                while j < tokens.len() {
                    let t = &tokens[j];
                    end_line = t.line;
                    if t.is_punct('{') {
                        brace += 1;
                    } else if t.is_punct('}') {
                        brace -= 1;
                        if brace == 0 {
                            break;
                        }
                    } else if t.is_punct(';') && brace == 0 {
                        break;
                    }
                    j += 1;
                }
                regions.push((start_line, end_line));
                i = j + 1;
                continue;
            }
        }
        i += 1;
    }
    regions
}

/// Extracts `lint:allow(tag) — reason` waivers from comments.
fn find_waivers(lexed: &FileLex) -> Vec<Waiver> {
    let mut waivers = Vec::new();
    for comment in &lexed.comments {
        // Doc comments describing the grammar are not waivers.
        if comment.text.starts_with("///")
            || comment.text.starts_with("//!")
            || comment.text.starts_with("/**")
            || comment.text.starts_with("/*!")
        {
            continue;
        }
        let Some(at) = comment.text.find("lint:allow(") else {
            continue;
        };
        let rest = &comment.text[at + "lint:allow(".len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let tag = rest[..close].trim().to_owned();
        let reason = rest[close + 1..]
            .trim_start_matches([' ', '\t', '—', '-', ':', '–'])
            .trim();
        let standalone = !lexed.tokens.iter().any(|t| t.line == comment.line);
        waivers.push(Waiver {
            line: comment.line,
            tag,
            has_reason: reason.chars().filter(|c| !c.is_whitespace()).count() >= 3,
            standalone,
        });
    }
    waivers
}

const ATOMIC_ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Integration tests and benches are whole files of test code that
/// `#[cfg(test)]` scanning can't see; the production-code rules skip them.
fn is_test_path(path: &str) -> bool {
    path.contains("/tests/") || path.contains("/benches/") || path.contains("/examples/")
}

/// Keywords that may directly precede `[` without forming an index
/// expression (slice patterns, types, and friends).
const NON_INDEX_KEYWORDS: [&str; 24] = [
    "let", "in", "return", "if", "else", "match", "mut", "ref", "as", "move", "where", "for",
    "while", "loop", "break", "continue", "impl", "fn", "pub", "use", "mod", "const", "static",
    "dyn",
];

const KNOWN_WAIVER_TAGS: [&str; 3] = ["panic", "atomic", "lock"];

/// Runs every rule over `files` under `config`; findings are sorted and
/// deduplicated. `doc_text` is the protocol doc for R5 (`None` is itself
/// a finding when R5 is configured).
pub fn run_rules(config: &Config, files: &[SourceFile], doc_text: Option<&str>) -> Vec<Finding> {
    let mut findings = Vec::new();
    rule_unsafe_confinement(config, files, &mut findings);
    rule_panic_ban(config, files, &mut findings);
    rule_atomic_orderings(config, files, &mut findings);
    rule_lock_across_call(config, files, &mut findings);
    rule_docs_drift(config, files, doc_text, &mut findings);
    rule_waiver_hygiene(config, files, &mut findings);
    findings.sort();
    findings.dedup();
    findings
}

/// R1: the token `unsafe` is legal only in the sanctioned file(s); every
/// crate root must pin the ban with `#![forbid(unsafe_code)]` (the crate
/// housing the sanctioned module gets `deny` + a scoped allowance).
fn rule_unsafe_confinement(config: &Config, files: &[SourceFile], findings: &mut Vec<Finding>) {
    let sanctioned = config.list("unsafe", "sanctioned");
    let deny_ok = config.list("unsafe", "deny_ok");
    for file in files {
        if sanctioned.contains(&file.path) {
            continue;
        }
        for tok in &file.lex.tokens {
            if tok.is_ident("unsafe") {
                findings.push(Finding {
                    path: file.path.clone(),
                    line: tok.line,
                    rule: "R1/unsafe",
                    message: format!(
                        "`unsafe` outside the sanctioned module(s) [{}]",
                        sanctioned.join(", ")
                    ),
                });
            }
        }
        let is_crate_root = file.path.ends_with("src/lib.rs");
        if is_crate_root {
            let want_forbid = !deny_ok.contains(&file.path);
            let level = if want_forbid { "forbid" } else { "deny" };
            if !has_inner_attr(&file.lex.tokens, level, "unsafe_code") {
                findings.push(Finding {
                    path: file.path.clone(),
                    line: 1,
                    rule: "R1/unsafe",
                    message: format!("crate root missing `#![{level}(unsafe_code)]`"),
                });
            }
        }
    }
}

/// `#![level(word)]` as a token sequence anywhere in the file.
fn has_inner_attr(tokens: &[Tok], level: &str, word: &str) -> bool {
    tokens.windows(8).any(|w| {
        w[0].is_punct('#')
            && w[1].is_punct('!')
            && w[2].is_punct('[')
            && w[3].is_ident(level)
            && w[4].is_punct('(')
            && w[5].is_ident(word)
            && w[6].is_punct(')')
            && w[7].is_punct(']')
    })
}

/// R2: panic paths are banned in designated hot-path modules — `unwrap`,
/// `expect`, `panic!`/`todo!`/`unreachable!`, and slice indexing that
/// should be `.get()`. Justified waivers (`lint:allow(panic)`) are the
/// escape hatch, counted and capped.
fn rule_panic_ban(config: &Config, files: &[SourceFile], findings: &mut Vec<Finding>) {
    let hot = config.list("hot_paths", "files");
    for file in files {
        if !hot.contains(&file.path) {
            continue;
        }
        let toks = &file.lex.tokens;
        for (i, tok) in toks.iter().enumerate() {
            if file.in_test(tok.line) || file.waived(tok.line, "panic") {
                continue;
            }
            let flag = |message: String, findings: &mut Vec<Finding>| {
                findings.push(Finding {
                    path: file.path.clone(),
                    line: tok.line,
                    rule: "R2/panic",
                    message,
                });
            };
            if tok.kind == TokKind::Ident
                && (tok.text == "unwrap" || tok.text == "expect")
                && i > 0
                && toks[i - 1].is_punct('.')
                && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            {
                flag(format!(".{}() on a hot path", tok.text), findings);
            }
            if tok.kind == TokKind::Ident
                && matches!(tok.text.as_str(), "panic" | "todo" | "unreachable")
                && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
                && !(i > 0 && toks[i - 1].is_punct('.'))
            {
                flag(format!("{}! on a hot path", tok.text), findings);
            }
            if tok.is_punct('[') && i > 0 {
                let prev = &toks[i - 1];
                let indexes = match prev.kind {
                    TokKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()),
                    TokKind::Punct => prev.is_punct(')') || prev.is_punct(']'),
                    _ => false,
                };
                if indexes {
                    let base = if prev.kind == TokKind::Ident {
                        prev.text.as_str()
                    } else {
                        "expression"
                    };
                    flag(
                        format!("slice index on `{base}` (use .get()) on a hot path"),
                        findings,
                    );
                }
            }
        }
    }
}

/// R3: every atomic `Ordering::X` must match the file's allowlist in
/// `lint.toml` or carry a waiver. Two escalations bypass the allowlist:
/// `SeqCst` is only sanctioned on identifiers named in the file's
/// `seqcst_idents` (cross-thread *flags*, where the full fence is the
/// point), and `Relaxed` touching anything named `*_flag` / `shutdown` /
/// `draining` is flagged outright (a relaxed load can run arbitrarily
/// stale against the store that set the flag).
fn rule_atomic_orderings(config: &Config, files: &[SourceFile], findings: &mut Vec<Finding>) {
    for file in files {
        if is_test_path(&file.path) {
            continue;
        }
        let section = format!("atomics.{}", file.path);
        let allow = config.list(&section, "allow");
        let seqcst_idents = config.list(&section, "seqcst_idents");
        let toks = &file.lex.tokens;
        for (i, tok) in toks.iter().enumerate() {
            if !tok.is_ident("Ordering") || file.in_test(tok.line) {
                continue;
            }
            let variant = match (toks.get(i + 1), toks.get(i + 2), toks.get(i + 3)) {
                (Some(a), Some(b), Some(v))
                    if a.is_punct(':') && b.is_punct(':') && v.kind == TokKind::Ident =>
                {
                    &v.text
                }
                _ => continue,
            };
            if !ATOMIC_ORDERINGS.contains(&variant.as_str()) {
                continue; // std::cmp::Ordering and friends
            }
            if file.waived(tok.line, "atomic") {
                continue;
            }
            let stmt = file.statement_idents_before(i);
            let flaggish = stmt
                .iter()
                .any(|id| id.ends_with("_flag") || *id == "shutdown" || *id == "draining");
            let mut flag = |message: String| {
                findings.push(Finding {
                    path: file.path.clone(),
                    line: tok.line,
                    rule: "R3/atomic",
                    message,
                });
            };
            match variant.as_str() {
                "SeqCst" => {
                    if !stmt.iter().any(|id| seqcst_idents.iter().any(|s| s == id)) {
                        flag(
                            "Ordering::SeqCst off the sanctioned flags (hot counters pay a full \
                             fence; add the ident to seqcst_idents if it IS a flag)"
                                .to_owned(),
                        );
                    }
                }
                "Relaxed" if flaggish => {
                    flag(
                        "Ordering::Relaxed on a cross-thread flag (*_flag/shutdown/draining \
                         must synchronize)"
                            .to_owned(),
                    );
                }
                v => {
                    if !allow.iter().any(|a| a == v) {
                        flag(format!(
                            "Ordering::{v} not in this file's allowlist (lint.toml [atomics.\"{}\"])",
                            file.path
                        ));
                    }
                }
            }
        }
    }
}

/// R4: a `let`-bound `.lock()` guard alive across an oracle/query call in
/// the same scope serializes every caller behind one query's probes. The
/// MemoOracle exactly-once pattern is the sanctioned exception, via
/// waiver.
fn rule_lock_across_call(config: &Config, files: &[SourceFile], findings: &mut Vec<Finding>) {
    let triggers = config.list("lock", "triggers");
    if triggers.is_empty() {
        return;
    }
    for file in files.iter().filter(|f| !is_test_path(&f.path)) {
        let toks = &file.lex.tokens;
        let mut i = 0;
        while i < toks.len() {
            if !toks[i].is_ident("let") || file.in_test(toks[i].line) {
                i += 1;
                continue;
            }
            // Span the binding statement and see whether it takes a lock.
            let let_depth = file.depth[i];
            let mut j = i + 1;
            let mut guard: Option<&str> = None;
            let mut takes_lock = false;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct(';') && file.depth[j] == let_depth {
                    break;
                }
                if t.is_punct('=') && guard.is_none() {
                    // Pattern complete: the last ident seen names the guard.
                    guard = toks[i + 1..j]
                        .iter()
                        .rev()
                        .find(|t| t.kind == TokKind::Ident && t.text != "mut")
                        .map(|t| t.text.as_str());
                }
                if t.is_ident("lock")
                    && j > 0
                    && toks[j - 1].is_punct('.')
                    && toks.get(j + 1).is_some_and(|t| t.is_punct('('))
                {
                    takes_lock = true;
                }
                j += 1;
            }
            let stmt_end = j;
            if !(takes_lock && guard.is_some()) {
                i += 1;
                continue;
            }
            let guard = guard.unwrap_or_default();
            // Scan the rest of the guard's scope for a trigger call.
            let mut k = stmt_end;
            while k < toks.len() && file.depth[k] >= let_depth {
                let t = &toks[k];
                // An explicit drop of the guard ends its liveness early.
                if t.is_ident("drop")
                    && toks.get(k + 1).is_some_and(|t| t.is_punct('('))
                    && toks.get(k + 2).is_some_and(|t| t.is_ident(guard))
                {
                    break;
                }
                if t.kind == TokKind::Ident
                    && triggers.iter().any(|tr| tr == &t.text)
                    && k > 0
                    && toks[k - 1].is_punct('.')
                    && toks.get(k + 1).is_some_and(|t| t.is_punct('('))
                    && !file.waived(t.line, "lock")
                    && !file.waived(toks[i].line, "lock")
                {
                    findings.push(Finding {
                        path: file.path.clone(),
                        line: t.line,
                        rule: "R4/lock",
                        message: format!(
                            ".{}() under the `{guard}` lock guard bound at line {}",
                            t.text, toks[i].line
                        ),
                    });
                }
                k += 1;
            }
            i += 1;
        }
    }
}

/// R5: the wire protocol's field and code literals and the protocol doc's
/// machine-readable table must be the same set, both directions.
fn rule_docs_drift(
    config: &Config,
    files: &[SourceFile],
    doc_text: Option<&str>,
    findings: &mut Vec<Finding>,
) {
    let sources = config.list("docs", "sources");
    let Some(doc_path) = config.str("docs", "protocol") else {
        return;
    };
    let ignore = config.list("docs", "ignore");
    // Code side: lowercase field/code-shaped string literals.
    let mut code: BTreeMap<&str, (&str, u32)> = BTreeMap::new();
    for file in files {
        if !sources.contains(&file.path) {
            continue;
        }
        for tok in &file.lex.tokens {
            if tok.kind != TokKind::Str || file.in_test(tok.line) {
                continue;
            }
            if is_protocol_literal(&tok.text) && !ignore.contains(&tok.text) {
                code.entry(tok.text.as_str())
                    .or_insert((file.path.as_str(), tok.line));
            }
        }
    }
    // Doc side: the fenced field table.
    let Some(doc) = doc_text else {
        findings.push(Finding {
            path: doc_path.to_owned(),
            line: 1,
            rule: "R5/docs",
            message: "protocol doc is missing or unreadable".to_owned(),
        });
        return;
    };
    let mut table: BTreeMap<String, u32> = BTreeMap::new();
    let (mut in_table, mut saw_begin, mut saw_end) = (false, false, false);
    for (lineno, line) in doc.lines().enumerate() {
        let lineno = lineno as u32 + 1;
        if line.contains("lint-field-table:begin") {
            in_table = true;
            saw_begin = true;
            continue;
        }
        if line.contains("lint-field-table:end") {
            in_table = false;
            saw_end = true;
            continue;
        }
        if !in_table {
            continue;
        }
        let Some(cell) = line
            .trim()
            .strip_prefix('|')
            .and_then(|r| r.split('|').next())
        else {
            continue;
        };
        let name = cell.trim().trim_matches('`').trim();
        if name.is_empty() || name == "literal" || name.chars().all(|c| "-: ".contains(c)) {
            continue; // header and separator rows
        }
        table.entry(name.to_owned()).or_insert(lineno);
    }
    if !(saw_begin && saw_end) {
        findings.push(Finding {
            path: doc_path.to_owned(),
            line: 1,
            rule: "R5/docs",
            message: "protocol doc is missing the lint-field-table:begin/end markers".to_owned(),
        });
        return;
    }
    for (literal, (path, line)) in &code {
        if !table.contains_key(*literal) {
            findings.push(Finding {
                path: (*path).to_owned(),
                line: *line,
                rule: "R5/docs",
                message: format!("wire literal \"{literal}\" is not in {doc_path}'s field table"),
            });
        }
    }
    for (literal, line) in &table {
        if !code.contains_key(literal.as_str()) {
            findings.push(Finding {
                path: doc_path.to_owned(),
                line: *line,
                rule: "R5/docs",
                message: format!(
                    "documented literal \"{literal}\" no longer appears in the wire sources"
                ),
            });
        }
    }
}

/// Field/code shape: `session`, `budget-exhausted`, `max_probes`, … —
/// lowercase, at least two chars, nothing a message string would match.
fn is_protocol_literal(s: &str) -> bool {
    s.len() >= 2
        && s.starts_with(|c: char| c.is_ascii_lowercase())
        && s.chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '-')
}

/// Waiver hygiene: unknown tags and missing reasons are findings, and the
/// per-tag counts must stay under the caps in `[waivers]`.
fn rule_waiver_hygiene(config: &Config, files: &[SourceFile], findings: &mut Vec<Finding>) {
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for file in files {
        for waiver in &file.waivers {
            if !KNOWN_WAIVER_TAGS.contains(&waiver.tag.as_str()) {
                findings.push(Finding {
                    path: file.path.clone(),
                    line: waiver.line,
                    rule: "W/waiver",
                    message: format!(
                        "unknown waiver tag `{}` (known: {})",
                        waiver.tag,
                        KNOWN_WAIVER_TAGS.join(", ")
                    ),
                });
                continue;
            }
            if !waiver.has_reason {
                findings.push(Finding {
                    path: file.path.clone(),
                    line: waiver.line,
                    rule: "W/waiver",
                    message: format!("waiver `lint:allow({})` without a reason", waiver.tag),
                });
            }
            *counts
                .entry(
                    KNOWN_WAIVER_TAGS[KNOWN_WAIVER_TAGS
                        .iter()
                        .position(|t| *t == waiver.tag)
                        .unwrap_or(0)],
                )
                .or_insert(0) += 1;
        }
    }
    for (tag, count) in counts {
        let cap_key = format!("max_{tag}");
        if let Some(cap) = config.int("waivers", &cap_key) {
            if count as i64 > cap {
                findings.push(Finding {
                    path: "lint.toml".to_owned(),
                    line: 1,
                    rule: "W/waiver",
                    message: format!(
                        "{count} `lint:allow({tag})` waivers exceed the cap of {cap} \
                         ([waivers] {cap_key})"
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(text: &str) -> Config {
        Config::parse(text).unwrap()
    }

    fn file(path: &str, src: &str) -> SourceFile {
        SourceFile::new(path, src)
    }

    #[test]
    fn test_regions_cover_gated_mods_and_fns() {
        let f = file(
            "x.rs",
            "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() { x.unwrap(); }\n}\nfn c() {}\n",
        );
        assert!(f.in_test(3));
        assert!(f.in_test(4));
        assert!(!f.in_test(1));
        assert!(!f.in_test(6));
    }

    #[test]
    fn unsafe_confinement_spares_only_the_sanctioned_file() {
        let config = cfg(r#"
            [unsafe]
            sanctioned = ["crates/serve/src/sys.rs"]
            deny_ok = ["crates/serve/src/lib.rs"]
            "#);
        let files = [
            file("crates/serve/src/sys.rs", "unsafe { x() }"),
            file("crates/graph/src/graph.rs", "unsafe { y() }"),
            file(
                "crates/graph/src/lib.rs",
                "#![forbid(unsafe_code)]\npub mod graph;",
            ),
            file("crates/rand/src/lib.rs", "pub mod coin;"),
        ];
        let findings = run_rules(&config, &files, None);
        let r1: Vec<_> = findings.iter().filter(|f| f.rule == "R1/unsafe").collect();
        assert_eq!(r1.len(), 2, "{r1:?}");
        assert!(r1.iter().any(|f| f.path == "crates/graph/src/graph.rs"));
        assert!(r1
            .iter()
            .any(|f| f.path == "crates/rand/src/lib.rs" && f.message.contains("forbid")));
    }

    #[test]
    fn panic_ban_catches_each_shape_and_honors_waivers() {
        let config = cfg("[hot_paths]\nfiles = [\"hot.rs\"]");
        let src = r#"
fn f(v: &[u8], m: &std::sync::Mutex<u8>) {
    v.first().unwrap();
    m.lock().expect("poisoned"); // lint:allow(panic) — poisoned mutex means a prior panic
    panic!("boom");
    let _x = v[0];
    let [_a, _b] = [1, 2]; // slice pattern: not an index
}
#[cfg(test)]
mod tests { fn t() { None::<u8>.unwrap(); } }
"#;
        let findings = run_rules(&config, &[file("hot.rs", src)], None);
        let r2: Vec<_> = findings.iter().filter(|f| f.rule == "R2/panic").collect();
        assert_eq!(r2.len(), 3, "{r2:?}");
        assert!(r2.iter().any(|f| f.message.contains(".unwrap()")));
        assert!(r2.iter().any(|f| f.message.contains("panic!")));
        assert!(r2.iter().any(|f| f.message.contains("slice index on `v`")));
    }

    #[test]
    fn atomic_audit_allowlists_escalates_seqcst_and_relaxed_flags() {
        let config = cfg(r#"
            [atomics."a.rs"]
            allow = ["Relaxed"]
            seqcst_idents = ["draining"]
            "#);
        let src = r#"
fn f(c: &std::sync::atomic::AtomicU64) {
    use std::sync::atomic::Ordering;
    c.fetch_add(1, Ordering::Relaxed);
    c.load(Ordering::Acquire);
    self.draining.store(true, Ordering::SeqCst);
    self.counter.fetch_add(1, Ordering::SeqCst);
    self.shutdown.load(Ordering::Relaxed);
    let _ = std::cmp::Ordering::Less;
}
"#;
        let findings = run_rules(&config, &[file("a.rs", src)], None);
        let r3: Vec<_> = findings.iter().filter(|f| f.rule == "R3/atomic").collect();
        assert_eq!(r3.len(), 3, "{r3:?}");
        assert!(r3.iter().any(|f| f.message.contains("Acquire")));
        assert!(r3.iter().any(|f| f.message.contains("SeqCst off")));
        assert!(r3.iter().any(|f| f.message.contains("cross-thread flag")));
    }

    #[test]
    fn lock_across_call_sees_the_guard_scope_and_drop() {
        let config = cfg("[lock]\ntriggers = [\"query\", \"probe\"]");
        let src = r#"
fn bad(o: &O) {
    let g = self.memo.lock().unwrap();
    o.query(1);
}
fn fine(o: &O) {
    let g = self.memo.lock().unwrap();
    drop(g);
    o.query(1);
}
fn scoped(o: &O) {
    { let g = self.memo.lock().unwrap(); }
    o.query(1);
}
"#;
        let findings = run_rules(&config, &[file("l.rs", src)], None);
        let r4: Vec<_> = findings.iter().filter(|f| f.rule == "R4/lock").collect();
        assert_eq!(r4.len(), 1, "{r4:?}");
        assert_eq!(r4[0].line, 4);
        assert!(r4[0].message.contains("`g`"));
    }

    #[test]
    fn docs_drift_is_two_directional() {
        let config = cfg(r#"
            [docs]
            protocol = "docs/PROTOCOL.md"
            sources = ["proto.rs"]
            "#);
        let src = r#"
fn parse(v: &Json) {
    v.get("session");
    v.get("max_probes");
    let code = "budget-exhausted";
    let msg = "not a field: has spaces";
}
"#;
        let doc = "\
# Protocol\n\
<!-- lint-field-table:begin -->\n\
| literal | kind | meaning |\n\
|---|---|---|\n\
| `session` | field | session name |\n\
| `ghost_field` | field | no longer exists |\n\
<!-- lint-field-table:end -->\n";
        let findings = run_rules(&config, &[file("proto.rs", src)], Some(doc));
        let r5: Vec<_> = findings.iter().filter(|f| f.rule == "R5/docs").collect();
        assert_eq!(r5.len(), 3, "{r5:?}");
        assert!(r5
            .iter()
            .any(|f| f.message.contains("max_probes") && f.path == "proto.rs"));
        assert!(r5.iter().any(|f| f.message.contains("budget-exhausted")));
        assert!(r5
            .iter()
            .any(|f| f.message.contains("ghost_field") && f.path == "docs/PROTOCOL.md"));
    }

    #[test]
    fn waiver_hygiene_checks_tags_reasons_and_caps() {
        let config = cfg("[waivers]\nmax_panic = 1\n[hot_paths]\nfiles = [\"w.rs\"]");
        let src = "
fn f() {
    a.unwrap(); // lint:allow(panic) — first justified case
    b.unwrap(); // lint:allow(panic) — second justified case
    c.unwrap(); // lint:allow(panic)
    d.unwrap(); // lint:allow(panics) — typo tag
}
";
        let findings = run_rules(&config, &[file("w.rs", src)], None);
        let w: Vec<_> = findings.iter().filter(|f| f.rule == "W/waiver").collect();
        assert!(w.iter().any(|f| f.message.contains("without a reason")));
        assert!(w.iter().any(|f| f.message.contains("unknown waiver tag")));
        assert!(w.iter().any(|f| f.message.contains("exceed the cap")));
        // The reasonless waiver does not suppress its finding; the typo'd
        // one cannot either.
        let r2: Vec<_> = findings.iter().filter(|f| f.rule == "R2/panic").collect();
        assert_eq!(r2.len(), 2, "{r2:?}");
    }
}
