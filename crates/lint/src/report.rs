//! Deterministic findings output and the shrink-only baseline.
//!
//! A baseline line is `rule<TAB>path<TAB>message` — no line numbers, so
//! grandfathered debt survives edits elsewhere in the file. Repeats are
//! meaningful: two identical violations in one file need two baseline
//! lines, and fixing one of them shrinks the baseline by one. CI commits
//! the baseline and diffs a fresh `--write-baseline` against it; growth
//! fails the build, shrink is the point.

use std::collections::BTreeMap;

use crate::rules::Finding;

/// The outcome of filtering findings through a baseline.
pub struct Screened {
    /// Findings not covered by the baseline — these fail `--check`.
    pub fresh: Vec<Finding>,
    /// Findings absorbed by baseline entries.
    pub baselined: usize,
    /// Baseline entries that matched nothing: fixed debt that should be
    /// removed from the committed file (CI's shrink check does exactly
    /// that comparison).
    pub stale: usize,
}

/// Splits `findings` into fresh vs baseline-covered, multiset-style.
pub fn screen(findings: Vec<Finding>, baseline: &str) -> Screened {
    let mut budget: BTreeMap<&str, usize> = BTreeMap::new();
    for line in baseline.lines() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        *budget.entry(line).or_insert(0) += 1;
    }
    let mut fresh = Vec::new();
    let mut baselined = 0usize;
    for finding in findings {
        let key = finding.baseline_key();
        match budget.get_mut(key.as_str()) {
            Some(n) if *n > 0 => {
                *n -= 1;
                baselined += 1;
            }
            _ => fresh.push(finding),
        }
    }
    let stale = budget.values().sum();
    Screened {
        fresh,
        baselined,
        stale,
    }
}

/// Renders findings one per line: `path:line: [rule] message`.
pub fn render(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n",
            f.path, f.line, f.rule, f.message
        ));
    }
    out
}

/// Renders the baseline file for the given findings (sorted, stable).
pub fn render_baseline(findings: &[Finding]) -> String {
    let mut lines: Vec<String> = findings.iter().map(Finding::baseline_key).collect();
    lines.sort();
    let mut out = String::from(
        "# lca-lint baseline: grandfathered findings (rule<TAB>path<TAB>message).\n\
         # This file may only shrink; CI diffs a fresh one against it.\n",
    );
    for line in lines {
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// `--fix-waivers` scaffolding: for each waivable finding, the exact
/// comment to insert (printed, never applied — a waiver needs a human
/// reason, which is the entire point of the grammar).
pub fn render_waiver_scaffold(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        let tag = match f.rule {
            "R2/panic" => "panic",
            "R3/atomic" => "atomic",
            "R4/lock" => "lock",
            _ => continue,
        };
        out.push_str(&format!(
            "{}:{}: insert `// lint:allow({tag}) — <why this is sound>` on this line or above\n",
            f.path, f.line
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, path: &str, line: u32, message: &str) -> Finding {
        Finding {
            rule,
            path: path.to_owned(),
            line,
            message: message.to_owned(),
        }
    }

    #[test]
    fn baseline_is_a_multiset_and_reports_stale_entries() {
        let findings = vec![
            finding("R2/panic", "a.rs", 3, ".unwrap() on a hot path"),
            finding("R2/panic", "a.rs", 9, ".unwrap() on a hot path"),
            finding("R3/atomic", "b.rs", 1, "Ordering::Acquire not allowed"),
        ];
        // Baseline covers ONE of the two identical unwraps plus a fixed one.
        let baseline = "R2/panic\ta.rs\t.unwrap() on a hot path\n\
                        R1/unsafe\tgone.rs\t`unsafe` outside the sanctioned module(s) []\n";
        let screened = screen(findings, baseline);
        assert_eq!(screened.baselined, 1);
        assert_eq!(screened.stale, 1);
        assert_eq!(screened.fresh.len(), 2);
    }

    #[test]
    fn baseline_round_trips_through_render() {
        let findings = vec![
            finding("R3/atomic", "b.rs", 1, "x"),
            finding("R2/panic", "a.rs", 3, "y"),
        ];
        let text = render_baseline(&findings);
        let screened = screen(findings, &text);
        assert_eq!(screened.fresh.len(), 0);
        assert_eq!(screened.baselined, 2);
        assert_eq!(screened.stale, 0);
    }
}
