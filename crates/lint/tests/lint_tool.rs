//! Fixture-driven tests for the invariant checker: every rule's minimal
//! violating file produces exactly the expected findings, the clean file
//! produces none, and the CLI's exit codes hold end to end.

use lca_lint::config::Config;
use lca_lint::rules::{run_rules, Finding, SourceFile};

const R1: &str = include_str!("fixtures/r1_unsafe.rs");
const R2: &str = include_str!("fixtures/r2_panic.rs");
const R3: &str = include_str!("fixtures/r3_atomic.rs");
const R4: &str = include_str!("fixtures/r4_lock.rs");
const R5: &str = include_str!("fixtures/r5_drift.rs");
const CLEAN: &str = include_str!("fixtures/clean.rs");

fn catalog() -> Config {
    Config::parse(
        r#"
        version = 1
        [unsafe]
        sanctioned = ["crates/serve/src/sys.rs"]
        [hot_paths]
        files = ["crates/serve/src/r2_panic.rs"]
        [atomics."crates/serve/src/r3_atomic.rs"]
        allow = ["Relaxed"]
        seqcst_idents = ["draining"]
        [lock]
        triggers = ["query", "probe"]
        [docs]
        protocol = "docs/PROTOCOL.md"
        sources = ["crates/serve/src/r5_drift.rs"]
        [waivers]
        max_panic = 4
        max_atomic = 2
        max_lock = 2
        "#,
    )
    .expect("fixture catalog parses")
}

fn findings_for(path: &str, src: &str, rule: &str) -> Vec<Finding> {
    let files = [SourceFile::new(path, src)];
    run_rules(&catalog(), &files, None)
        .into_iter()
        .filter(|f| f.rule == rule)
        .collect()
}

#[test]
fn r1_flags_unsafe_outside_the_sanctioned_module() {
    let found = findings_for("crates/serve/src/r1_unsafe.rs", R1, "R1/unsafe");
    assert_eq!(found.len(), 1, "{found:?}");
    assert_eq!(found[0].line, 3);
    // The same content inside the sanctioned module is legal.
    let found = findings_for("crates/serve/src/sys.rs", R1, "R1/unsafe");
    assert!(found.is_empty(), "{found:?}");
}

#[test]
fn r2_flags_each_panic_shape_once_and_honors_the_waiver() {
    let found = findings_for("crates/serve/src/r2_panic.rs", R2, "R2/panic");
    // unwrap, panic!, and the index — the waived expect and the entire
    // #[cfg(test)] module produce nothing.
    assert_eq!(found.len(), 3, "{found:?}");
    assert!(found.iter().any(|f| f.message.contains(".unwrap()")));
    assert!(found.iter().any(|f| f.message.contains("panic!")));
    assert!(found
        .iter()
        .any(|f| f.message.contains("slice index on `v`")));
    assert!(!found.iter().any(|f| f.message.contains(".expect()")));
}

#[test]
fn r3_flags_off_allowlist_seqcst_and_relaxed_flag_orderings() {
    let found = findings_for("crates/serve/src/r3_atomic.rs", R3, "R3/atomic");
    assert_eq!(found.len(), 3, "{found:?}");
    assert!(found
        .iter()
        .any(|f| f.message.contains("Ordering::Acquire")));
    assert!(found.iter().any(|f| f.message.contains("SeqCst off")));
    assert!(found
        .iter()
        .any(|f| f.message.contains("cross-thread flag")));
}

#[test]
fn r4_flags_only_the_guard_held_across_the_call() {
    let found = findings_for("crates/serve/src/r4_lock.rs", R4, "R4/lock");
    assert_eq!(found.len(), 1, "{found:?}");
    // The finding anchors on the call, naming the guard's binding line.
    assert_eq!(found[0].line, 5);
    assert!(found[0].message.contains("`guard`"));
    assert!(found[0].message.contains("line 4"));
}

#[test]
fn r5_flags_drift_in_both_directions() {
    let doc = "\
# Protocol\n\
<!-- lint-field-table:begin -->\n\
| literal | kind | meaning |\n\
|---|---|---|\n\
| `session` | field | session name |\n\
| `ghost_field` | field | removed long ago |\n\
<!-- lint-field-table:end -->\n";
    let files = [SourceFile::new("crates/serve/src/r5_drift.rs", R5)];
    let found: Vec<Finding> = run_rules(&catalog(), &files, Some(doc))
        .into_iter()
        .filter(|f| f.rule == "R5/docs")
        .collect();
    assert_eq!(found.len(), 2, "{found:?}");
    assert!(found
        .iter()
        .any(|f| f.message.contains("max_probes") && f.path.ends_with("r5_drift.rs")));
    assert!(found
        .iter()
        .any(|f| f.message.contains("ghost_field") && f.path == "docs/PROTOCOL.md"));
}

#[test]
fn the_clean_file_is_clean_under_every_rule() {
    // Run it as a hot-path file AND with an atomics allowlist so every
    // rule actually looks at it.
    let config = Config::parse(
        r#"
        [unsafe]
        sanctioned = []
        [hot_paths]
        files = ["crates/serve/src/clean.rs"]
        [lock]
        triggers = ["query"]
        "#,
    )
    .expect("catalog parses");
    let files = [SourceFile::new("crates/serve/src/clean.rs", CLEAN)];
    let found = run_rules(&config, &files, None);
    assert!(found.is_empty(), "{found:?}");
}

#[test]
fn lexer_edge_cases_do_not_leak_unsafe_tokens() {
    // `unsafe` in raw strings, nested comments, and escaped strings must
    // not trip R1 even when the file is outside the sanctioned set.
    let found = findings_for("crates/serve/src/clean.rs", CLEAN, "R1/unsafe");
    assert!(found.is_empty(), "{found:?}");
}

// ── CLI exit codes ──────────────────────────────────────────────────────

use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lca-lint"))
}

/// Builds a throwaway workspace under the cargo-provided tmp dir.
fn scratch_workspace(name: &str, violating: bool) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let src_dir = root.join("src");
    std::fs::create_dir_all(&src_dir).expect("mkdir scratch src");
    std::fs::write(
        root.join("lint.toml"),
        "version = 1\n[unsafe]\nsanctioned = []\n[hot_paths]\nfiles = [\"src/hot.rs\"]\n",
    )
    .expect("write catalog");
    let body = if violating {
        "pub fn f(v: &[u8]) -> u8 { v.first().copied().unwrap() }\n"
    } else {
        "pub fn f(v: &[u8]) -> Option<u8> { v.first().copied() }\n"
    };
    std::fs::write(src_dir.join("hot.rs"), body).expect("write fixture source");
    root
}

#[test]
fn check_exits_zero_on_a_clean_tree() {
    let root = scratch_workspace("lint-clean", false);
    let status = bin()
        .args(["--root", root.to_str().expect("utf-8 tmp path"), "--check"])
        .status()
        .expect("run lca-lint");
    assert_eq!(status.code(), Some(0));
}

#[test]
fn check_exits_nonzero_on_a_violation() {
    let root = scratch_workspace("lint-dirty", true);
    let output = bin()
        .args(["--root", root.to_str().expect("utf-8 tmp path"), "--check"])
        .output()
        .expect("run lca-lint");
    assert_eq!(output.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("R2/panic"), "{stdout}");
    assert!(stdout.contains("src/hot.rs:1"), "{stdout}");
}

#[test]
fn a_baseline_absorbs_known_findings_and_reports_stale_ones() {
    let root = scratch_workspace("lint-baselined", true);
    // Generate the baseline from the current findings, then check again:
    // everything is absorbed, so --check passes.
    let baseline = root.join("baseline.txt");
    let root_arg = root.to_str().expect("utf-8 tmp path");
    let baseline_arg = baseline.to_str().expect("utf-8 tmp path");
    let status = bin()
        .args(["--root", root_arg, "--write-baseline", baseline_arg])
        .status()
        .expect("run lca-lint");
    assert_eq!(status.code(), Some(0));
    let status = bin()
        .args(["--root", root_arg, "--check", "--baseline", baseline_arg])
        .status()
        .expect("run lca-lint");
    assert_eq!(status.code(), Some(0));
    // Fix the violation: the check still passes (shrunken, not grown) and
    // the stale entry is reported on stdout.
    std::fs::write(
        root.join("src").join("hot.rs"),
        "pub fn f(v: &[u8]) -> Option<u8> { v.first().copied() }\n",
    )
    .expect("rewrite fixture source");
    let output = bin()
        .args(["--root", root_arg, "--check", "--baseline", baseline_arg])
        .output()
        .expect("run lca-lint");
    assert_eq!(output.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("1 stale"), "{stdout}");
}

#[test]
fn a_broken_catalog_is_a_usage_error() {
    let root = scratch_workspace("lint-broken-config", false);
    std::fs::write(root.join("lint.toml"), "[unterminated\n").expect("write catalog");
    let status = bin()
        .args(["--root", root.to_str().expect("utf-8 tmp path"), "--check"])
        .status()
        .expect("run lca-lint");
    assert_eq!(status.code(), Some(2));
}

#[test]
fn fix_waivers_prints_the_insertable_comment() {
    let root = scratch_workspace("lint-scaffold", true);
    let output = bin()
        .args([
            "--root",
            root.to_str().expect("utf-8 tmp path"),
            "--fix-waivers",
        ])
        .output()
        .expect("run lca-lint");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("lint:allow(panic)"), "{stdout}");
}
