// R3 fixture: an off-allowlist ordering, SeqCst off the sanctioned flags,
// and Relaxed on a cross-thread flag.
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

pub fn orderings(counter: &AtomicU64, shutdown: &AtomicBool, draining: &AtomicBool) {
    counter.fetch_add(1, Ordering::Relaxed); // allowlisted
    counter.load(Ordering::Acquire); // NOT allowlisted
    counter.fetch_add(1, Ordering::SeqCst); // SeqCst on a counter
    draining.store(true, Ordering::SeqCst); // sanctioned via seqcst_idents
    shutdown.load(Ordering::Relaxed); // Relaxed on a cross-thread flag
    let _ = 1.cmp(&2) == std::cmp::Ordering::Less; // not an atomic ordering
}
