// R5 fixture: two field literals, one of which the doc table is missing;
// the doc table also carries a ghost entry the code no longer has.
pub fn parse(v: &Json) {
    let _ = v.get("session");
    let _ = v.get("max_probes");
    let _msg = "not a field: it has spaces";
}
