// R2 fixture: every banned panic shape once, plus a properly waived site
// and a test module the rule must skip.
pub fn hot(v: &[u8], m: &std::sync::Mutex<u8>) -> u8 {
    let first = v.first().unwrap();
    // lint:allow(panic) — poison means a sibling thread already panicked
    let guard = m.lock().expect("poisoned");
    if *first > *guard {
        panic!("boom");
    }
    v[0]
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_here() {
        None::<u8>.unwrap_or(0);
        Some(1u8).unwrap();
    }
}
