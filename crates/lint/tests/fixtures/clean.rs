// Clean fixture: everything the lexer must NOT mistake for a violation.
// The word unsafe appears below only inside strings and comments.
pub fn clean(v: &[u8]) -> Option<u8> {
    // unsafe in a line comment is not a token
    /* unsafe in a /* nested */ block comment is not a token either */
    let _plain = "unsafe";
    let _raw = r#"unsafe { *p }"#;
    let _fenced = br##"an "unsafe" quote inside "##;
    let _escaped = "she said \"unsafe\"";
    let _char = 'u';
    let _lifetime: Option<&'static str> = None;
    v.first().copied()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        super::clean(&[1]).unwrap();
    }
}
