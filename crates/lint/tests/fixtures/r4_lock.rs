// R4 fixture: a lock guard held across an oracle call, one correctly
// dropped first, one scoped out, and one sanctioned by waiver.
pub fn bad(memo: &std::sync::Mutex<u8>, oracle: &O) {
    let guard = memo.lock().unwrap();
    oracle.query(*guard);
}

pub fn dropped_first(memo: &std::sync::Mutex<u8>, oracle: &O) {
    let guard = memo.lock().unwrap();
    drop(guard);
    oracle.query(0);
}

pub fn scoped_out(memo: &std::sync::Mutex<u8>, oracle: &O) {
    {
        let _guard = memo.lock().unwrap();
    }
    oracle.query(0);
}

pub fn sanctioned(memo: &std::sync::Mutex<u8>, oracle: &O) {
    // lint:allow(lock) — exactly-once memo fill: the lock IS the dedupe
    let guard = memo.lock().unwrap();
    oracle.query(*guard);
}
