// R1 fixture: one real `unsafe` block outside the sanctioned module.
pub fn read_raw(p: *const u8) -> u8 {
    unsafe { *p }
}
