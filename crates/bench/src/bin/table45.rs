//! Regenerates **Tables 4 and 5** (probe complexity of the O(k²)-spanner
//! subroutines): measured probes for each subroutine of the H_sparse and
//! H_dense pipelines, next to the paper's bounds.
//!
//! Run: `cargo run --release -p lca-bench --bin table45`

// This binary's product is its stdout; the workspace print ban
// applies to library code, not report/CLI entry points.
#![allow(clippy::print_stdout)]
use lca_bench::{record_json, Table};
use lca_core::{EdgeSubgraphLca, K2Params, K2Spanner};
use lca_graph::gen::RegularBuilder;
use lca_graph::VertexId;
use lca_probe::CountingOracle;
use lca_rand::{Seed, SplitMix64};

#[derive(serde::Serialize)]
struct Row {
    table: &'static str,
    subroutine: String,
    bound: String,
    probe_mean: f64,
    probe_max: u64,
    samples: usize,
}

fn measure<F: FnMut(usize)>(
    counter: &CountingOracle<&lca_graph::Graph>,
    samples: usize,
    mut f: F,
) -> (f64, u64) {
    let mut sum = 0u64;
    let mut max = 0u64;
    for i in 0..samples {
        let scope = counter.scoped();
        f(i);
        let c = scope.cost().total();
        sum += c;
        max = max.max(c);
    }
    (sum as f64 / samples.max(1) as f64, max)
}

fn main() {
    let n = 1200usize;
    let d = 4usize;
    let k = 2usize;
    let seed = Seed::new(0x7AB45);
    let g = RegularBuilder::new(n, d)
        .seed(seed.derive(1))
        .build()
        .expect("regular graph");
    let counter = CountingOracle::new(&g);
    // Demo-scale center constant (see K2Params::with_center_constant docs).
    let params = K2Params::with_center_constant(n, k, 3.0);
    let lca = K2Spanner::new(&counter, params.clone(), seed);
    let mut rng = SplitMix64::new(seed.derive(2).value());
    let rand_v = |rng: &mut SplitMix64| VertexId::new(rng.next_below(n as u64) as usize);
    let samples = 150usize;

    let mut table = Table::new(["table", "subroutine", "paper bound", "mean", "max"]);
    let mut emit = |t: &'static str, name: &str, bound: &str, mean: f64, max: u64| {
        table.row([
            t.to_string(),
            name.to_string(),
            bound.to_string(),
            format!("{mean:.1}"),
            max.to_string(),
        ]);
        record_json(
            "table45",
            &Row {
                table: t,
                subroutine: name.into(),
                bound: bound.into(),
                probe_mean: mean,
                probe_max: max,
                samples,
            },
        );
    };

    // ---- Table 4: H_sparse subroutines. -----------------------------------
    let (mean, max) = measure(&counter, samples, |_| {
        // Center membership is probe-free by construction.
        let v = rand_v(&mut rng);
        let _ = lca.is_center_label(g.label(v));
    });
    emit("T4", "is v a center?", "0 probes", mean, max);

    let (mean, max) = measure(&counter, samples, |_| {
        let v = rand_v(&mut rng);
        let _ = lca.vertex_status(v);
    });
    emit("T4", "D^k_L / sparse-vs-dense test", "O(ΔL)", mean, max);

    // Full sparse-edge test: query edges with a sparse endpoint.
    let sparse_edges: Vec<(VertexId, VertexId)> = g
        .edges()
        .filter(|&(u, v)| lca.vertex_status(u).is_sparse() || lca.vertex_status(v).is_sparse())
        .take(samples)
        .collect();
    if !sparse_edges.is_empty() {
        let mut i = 0usize;
        let (mean, max) = measure(&counter, sparse_edges.len(), |_| {
            let (u, v) = sparse_edges[i % sparse_edges.len()];
            i += 1;
            let _ = lca.contains(u, v);
        });
        emit("T4", "(u,v) ∈ H_sparse?", "O(Δ²L²)", mean, max);
    }

    // ---- Table 5: H_dense subroutines. ------------------------------------
    let dense_vertices: Vec<VertexId> = g
        .vertices()
        .filter(|&v| !lca.vertex_status(v).is_sparse())
        .collect();
    if dense_vertices.is_empty() {
        table.print("Tables 4 & 5 — O(k²) subroutine probe complexities");
        println!("(no dense vertices at these parameters; H_dense rows skipped)");
        return;
    }
    let pick_dense =
        |rng: &mut SplitMix64| dense_vertices[rng.next_below(dense_vertices.len() as u64) as usize];

    let (mean, max) = measure(&counter, samples, |_| {
        let v = pick_dense(&mut rng);
        let _ = lca.tree_parent(v);
    });
    emit("T5", "c(v) and π(v,c(v))", "O(ΔL)", mean, max);

    let (mean, max) = measure(&counter, samples, |_| {
        let v = pick_dense(&mut rng);
        let w = g.neighbors(v)[0];
        let _ = lca.is_tree_edge(v, w);
    });
    emit("T5", "(u,v) ∈ H^(I)?", "O(ΔL)", mean, max);

    let (mean, max) = measure(&counter, samples, |_| {
        let v = pick_dense(&mut rng);
        let _ = lca.cluster_members_of(v);
    });
    emit("T5", "entire cluster of v", "O(Δ³L²)", mean, max);

    let (mean, max) = measure(&counter, samples, |_| {
        let v = pick_dense(&mut rng);
        let _ = lca.boundary_centers_of(v);
    });
    emit("T5", "c(∂A)", "O(Δ²L²)", mean, max);

    // Full dense test on dense–dense edges.
    let dense_edges: Vec<(VertexId, VertexId)> = g
        .edges()
        .filter(|&(u, v)| !lca.vertex_status(u).is_sparse() && !lca.vertex_status(v).is_sparse())
        .take(samples)
        .collect();
    if !dense_edges.is_empty() {
        let mut i = 0usize;
        let (mean, max) = measure(&counter, dense_edges.len(), |_| {
            let (u, v) = dense_edges[i % dense_edges.len()];
            i += 1;
            let _ = lca.contains(u, v);
        });
        emit("T5", "(u,v) ∈ H_dense?", "O(pΔ⁴L³ log n)", mean, max);
    }

    table.print(&format!(
        "Tables 4 & 5 — O(k²) subroutine probe complexities (n={n}, d={d}, k={k}, L={})",
        params.l
    ));
}
