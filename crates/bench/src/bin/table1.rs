//! Regenerates **Table 1** (the paper's results table, "This Work" block):
//! for each of the four theorems, the achieved spanner size, stretch, and
//! probe complexity on workloads in the theorem's regime, next to the
//! theoretical envelope.
//!
//! Run: `cargo run --release -p lca-bench --bin table1`

// This binary's product is its stdout; the workspace print ban
// applies to library code, not report/CLI entry points.
#![allow(clippy::print_stdout)]
use lca_bench::{probe_stats, record_json, sample_edges, sampled_stretch, Table};
use lca_core::global::{
    five_spanner_global, into_subgraph, k2_spanner_global, three_spanner_global,
};
use lca_core::{
    FiveSpanner, FiveSpannerParams, K2Params, K2Spanner, ThreeSpanner, ThreeSpannerParams,
};
use lca_graph::gen::{GnpBuilder, RegularBuilder};
use lca_probe::CountingOracle;
use lca_rand::Seed;

#[derive(serde::Serialize)]
struct Row {
    theorem: String,
    workload: String,
    n: usize,
    m: usize,
    max_degree: usize,
    kept_edges: usize,
    size_envelope: f64,
    size_ratio: f64,
    stretch_bound: usize,
    stretch_measured: i64,
    probe_max: u64,
    probe_mean: f64,
    probe_envelope: f64,
}

fn main() {
    let seed = Seed::new(0xA11CE);
    let queries = 200;
    let mut table = Table::new([
        "theorem",
        "workload",
        "n",
        "m",
        "Δ",
        "|H|",
        "|H|/env",
        "stretch≤",
        "measured",
        "probes max",
        "probes mean",
        "env n^a",
    ]);

    // --- Theorem 1.1, r = 2: 3-spanner, Õ(n^{3/2}) edges, Õ(n^{3/4}) probes.
    for &n in &[512usize, 1024, 2048] {
        let g = GnpBuilder::new(n, 0.25).seed(seed.derive(n as u64)).build();
        let params = ThreeSpannerParams::for_n(n);
        let h = into_subgraph(&g, &three_spanner_global(&g, &params, seed));
        let counter = CountingOracle::new(&g);
        let lca = ThreeSpanner::new(&counter, params, seed);
        let sample = sample_edges(&g, queries, seed.derive(1));
        let st = probe_stats(&counter, &lca, &sample);
        let stretch = sampled_stretch(&g, &h, 500, 4, seed.derive(2));
        let env_size = (n as f64).powf(1.5);
        let env_probe = (n as f64).powf(0.75);
        let row = Row {
            theorem: "Thm 1.1 r=2 (3-spanner)".into(),
            workload: "G(n,0.25) dense".into(),
            n,
            m: g.edge_count(),
            max_degree: g.max_degree(),
            kept_edges: h.edge_count(),
            size_envelope: env_size,
            size_ratio: h.edge_count() as f64 / env_size,
            stretch_bound: 3,
            stretch_measured: stretch.map_or(-1, |s| s as i64),
            probe_max: st.max,
            probe_mean: st.mean,
            probe_envelope: env_probe,
        };
        push(&mut table, &row);
        record_json("table1", &row);
    }

    // --- Theorem 1.1, r = 3: 5-spanner, Õ(n^{4/3}) edges, Õ(n^{5/6}) probes.
    for &n in &[512usize, 1024, 2048] {
        let g = GnpBuilder::new(n, 0.25).seed(seed.derive(n as u64)).build();
        let params = FiveSpannerParams::for_n(n);
        let h = into_subgraph(&g, &five_spanner_global(&g, &params, seed));
        let counter = CountingOracle::new(&g);
        let lca = FiveSpanner::new(&counter, params, seed);
        let sample = sample_edges(&g, queries.min(80), seed.derive(3));
        let st = probe_stats(&counter, &lca, &sample);
        let stretch = sampled_stretch(&g, &h, 300, 6, seed.derive(4));
        let env_size = (n as f64).powf(4.0 / 3.0);
        let env_probe = (n as f64).powf(5.0 / 6.0);
        let row = Row {
            theorem: "Thm 1.1 r=3 (5-spanner)".into(),
            workload: "G(n,0.25) dense".into(),
            n,
            m: g.edge_count(),
            max_degree: g.max_degree(),
            kept_edges: h.edge_count(),
            size_envelope: env_size,
            size_ratio: h.edge_count() as f64 / env_size,
            stretch_bound: 5,
            stretch_measured: stretch.map_or(-1, |s| s as i64),
            probe_max: st.max,
            probe_mean: st.mean,
            probe_envelope: env_probe,
        };
        push(&mut table, &row);
        record_json("table1", &row);
    }

    // --- Theorem 3.5: min-degree variant (r = 2) on graphs of min degree
    // ≥ n^{1/4}: 5-spanner with Õ(n^{3/2}) edges, Õ(n^{3/4}) probes.
    {
        let n = 1024;
        let g = GnpBuilder::new(n, 0.3).seed(seed.derive(77)).build();
        let params = FiveSpannerParams::for_min_degree(n, 2);
        assert!(g.min_degree() >= params.med_threshold, "regime check");
        let h = into_subgraph(&g, &five_spanner_global(&g, &params, seed));
        let counter = CountingOracle::new(&g);
        let lca = FiveSpanner::new(&counter, params, seed);
        let sample = sample_edges(&g, 80, seed.derive(5));
        let st = probe_stats(&counter, &lca, &sample);
        let stretch = sampled_stretch(&g, &h, 300, 6, seed.derive(6));
        let env_size = (n as f64).powf(1.5);
        let row = Row {
            theorem: "Thm 3.5 (min-deg, r=2)".into(),
            workload: "G(n,0.3), min-deg regime".into(),
            n,
            m: g.edge_count(),
            max_degree: g.max_degree(),
            kept_edges: h.edge_count(),
            size_envelope: env_size,
            size_ratio: h.edge_count() as f64 / env_size,
            stretch_bound: 5,
            stretch_measured: stretch.map_or(-1, |s| s as i64),
            probe_max: st.max,
            probe_mean: st.mean,
            probe_envelope: (n as f64).powf(0.75),
        };
        push(&mut table, &row);
        record_json("table1", &row);
    }

    // --- Theorem 1.2: O(k²)-spanner on bounded-degree graphs. The center
    // constant is demo-scaled (see K2Params::with_center_constant): the
    // paper's log n / n^{1/3} saturates to 1 below n ≈ 10⁵.
    for &(n, k) in &[(1000usize, 2usize), (1000, 3), (2000, 2)] {
        let g = RegularBuilder::new(n, 4)
            .seed(seed.derive(900 + n as u64 + k as u64))
            .build()
            .expect("regular graph");
        let params = K2Params::with_center_constant(n, k, 3.0);
        let h = into_subgraph(&g, &k2_spanner_global(&g, &params, seed));
        let counter = CountingOracle::new(&g);
        let lca = K2Spanner::new(&counter, params, seed);
        let sample = sample_edges(&g, 100, seed.derive(7));
        let st = probe_stats(&counter, &lca, &sample);
        let cap = ((2 * k + 1) * (2 * k + 2)) as u32;
        let stretch = sampled_stretch(&g, &h, 300, cap, seed.derive(8));
        let env_size = (n as f64).powf(1.0 + 1.0 / k as f64);
        let env_probe = 4f64.powi(4) * (n as f64).powf(2.0 / 3.0);
        let row = Row {
            theorem: format!("Thm 1.2 (O(k²), k={k})"),
            workload: "random 4-regular".into(),
            n,
            m: g.edge_count(),
            max_degree: g.max_degree(),
            kept_edges: h.edge_count(),
            size_envelope: env_size,
            size_ratio: h.edge_count() as f64 / env_size,
            stretch_bound: k * k * 4,
            stretch_measured: stretch.map_or(-1, |s| s as i64),
            probe_max: st.max,
            probe_mean: st.mean,
            probe_envelope: env_probe,
        };
        push(&mut table, &row);
        record_json("table1", &row);
    }

    table.print("Table 1 — size / stretch / probe trade-offs (This Work block)");
    println!(
        "\n(Thm 1.3 lower-bound row: see `cargo run --release -p lca-bench --bin fig_lower_bound`;"
    );
    println!("stretch 'measured' = sampled max detour, -1 would flag a violation; envelopes omit polylog factors.)");
}

fn push(table: &mut Table, r: &Row) {
    table.row([
        r.theorem.clone(),
        r.workload.clone(),
        r.n.to_string(),
        r.m.to_string(),
        r.max_degree.to_string(),
        r.kept_edges.to_string(),
        format!("{:.2}", r.size_ratio),
        r.stretch_bound.to_string(),
        r.stretch_measured.to_string(),
        r.probe_max.to_string(),
        format!("{:.1}", r.probe_mean),
        format!("{:.0}", r.probe_envelope),
    ]);
}
