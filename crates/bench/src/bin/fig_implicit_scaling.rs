//! Figure F-implicit — the flat-cost claim of the LCA model made visible:
//! per-query probe counts and latency on implicit G(n, c/n) oracles as n
//! grows from 10⁴ to 10⁸, with peak RSS alongside. Probes and latency stay
//! flat in n while a materialized graph would have grown by four orders of
//! magnitude; resident memory stays bounded because nothing is ever built.
//!
//! Run: `cargo run --release -p lca-bench --bin fig_implicit_scaling`
//! (set `LCA_IMPLICIT_MAX_N` to cap the largest size, e.g. on small hosts)

// This binary's product is its stdout; the workspace print ban
// applies to library code, not report/CLI entry points.
#![allow(clippy::print_stdout)]
use std::time::Instant;

use lca::core::QueryEngine;
use lca::prelude::*;
use lca_bench::{peak_rss_bytes, record_json, Table};

#[derive(serde::Serialize)]
struct Row {
    algorithm: &'static str,
    n: usize,
    queries: usize,
    batch_ms: f64,
    us_per_query: f64,
    probe_mean: f64,
    probe_max: u64,
    peak_rss_mb: f64,
}

fn main() {
    let max_n: usize = std::env::var("LCA_IMPLICIT_MAX_N")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000_000);
    let sizes: Vec<usize> = [10_000, 100_000, 1_000_000, 10_000_000, 100_000_000]
        .into_iter()
        .filter(|&n| n <= max_n)
        .collect();
    let c = 4.0;
    let seed = Seed::new(0x1F1);
    let engine = QueryEngine::new();
    println!(
        "implicit scaling: G(n, {c}/n), {} engine threads, sizes up to {}",
        engine.threads(),
        sizes.last().copied().unwrap_or(0)
    );

    let mut table = Table::new([
        "algorithm",
        "n",
        "queries",
        "batch ms",
        "µs/query",
        "probes mean",
        "probes max",
        "peak RSS MB",
    ]);

    for &n in &sizes {
        let oracle = ImplicitGnp::new(n, c, seed.derive(n as u64));
        for kind in [
            AlgorithmKind::Classic(ClassicKind::Mis),
            AlgorithmKind::Spanner(SpannerKind::Three),
        ] {
            let count = 512;
            let queries = kind.queries_from(&oracle, QuerySource::sample(count, seed.derive(1)));
            let config = LcaConfig::new(kind, seed.derive(2));

            // Wall-clock of a plain engine batch over one shared instance…
            let algo = config.build(&oracle);
            let t = Instant::now();
            let answers = engine.query_batch(&algo, &queries);
            let batch_ms = t.elapsed().as_secs_f64() * 1e3;
            assert!(answers.iter().all(|a| a.is_ok()), "batch failure at n={n}");

            // …and probe accounting through per-shard counted instances.
            let run = engine.measure_batch(&queries, &oracle, |counted| config.build(counted));

            let row = Row {
                algorithm: kind.name(),
                n,
                queries: queries.len(),
                batch_ms,
                us_per_query: batch_ms * 1e3 / queries.len().max(1) as f64,
                probe_mean: run.per_query_mean,
                probe_max: run.per_query_max,
                peak_rss_mb: peak_rss_bytes().map_or(f64::NAN, |b| b as f64 / (1 << 20) as f64),
            };
            record_json("fig_implicit_scaling", &row);
            table.row([
                row.algorithm.to_string(),
                row.n.to_string(),
                row.queries.to_string(),
                format!("{:.1}", row.batch_ms),
                format!("{:.1}", row.us_per_query),
                format!("{:.1}", row.probe_mean),
                row.probe_max.to_string(),
                format!("{:.0}", row.peak_rss_mb),
            ]);
        }
    }

    table.print("Figure F-implicit — flat per-query cost on graphs that are never materialized");
    println!();
    println!("(a materialized G(10^8, 4/10^8) needs ≥ 4 GB of CSR + adjacency index;");
    println!(
        " peak RSS above is the whole process, oracles included — the input costs 0 bytes/vertex.)"
    );
}
