//! Regenerates **Table 3** (O(k²)-spanner edge categorization): E_sparse vs
//! E_dense sizes, the decomposition of the spanner into H_sparse, H^(I) and
//! H^(B), and per-category probe costs.
//!
//! Run: `cargo run --release -p lca-bench --bin table3`

use lca_bench::{record_json, sample_edges, Table};
use lca_core::global::{k2_partition, k2_spanner_global};
use lca_core::{EdgeSubgraphLca, K2Params, K2Spanner};
use lca_graph::gen::RegularBuilder;
use lca_probe::CountingOracle;
use lca_rand::Seed;

#[derive(serde::Serialize)]
struct Row {
    n: usize,
    degree: usize,
    k: usize,
    sparse_vertices: usize,
    cells: usize,
    e_sparse: usize,
    e_dense: usize,
    h_sparse: usize,
    h_tree: usize,
    h_between: usize,
    probe_mean_sparse: f64,
    probe_mean_dense: f64,
    probe_max: u64,
}

fn main() {
    let mut table = Table::new([
        "n",
        "d",
        "k",
        "#sparse",
        "#cells",
        "|E_sp|",
        "|E_dn|",
        "|H_sp|",
        "|H^I|",
        "|H^B|",
        "probes sp",
        "probes dn",
        "probes max",
    ]);
    let seed = Seed::new(0xC0DE);
    for &(n, d, k) in &[
        (800usize, 4usize, 2usize),
        (800, 4, 3),
        (1500, 4, 2),
        (800, 6, 2),
    ] {
        let g = RegularBuilder::new(n, d)
            .seed(seed.derive((n + d + k) as u64))
            .build()
            .expect("regular graph");
        // Demo-scale center constant: the paper's Θ(log n)/L saturates to 1
        // at these n (see K2Params::with_center_constant docs).
        let params = K2Params::with_center_constant(n, k, 3.0);
        let part = k2_partition(&g, &params, seed);
        let h = k2_spanner_global(&g, &params, seed);

        let is_sparse = |v: lca_graph::VertexId| part.cell[v.index()].is_none();
        let mut e_sparse = 0usize;
        let mut e_dense = 0usize;
        for (u, v) in g.edges() {
            if is_sparse(u) || is_sparse(v) {
                e_sparse += 1;
            } else {
                e_dense += 1;
            }
        }
        // Decompose H.
        let tree: std::collections::HashSet<(u32, u32)> = g
            .vertices()
            .filter_map(|v| {
                part.parent[v.index()].map(|p| {
                    let (a, b) = (v.raw(), p.raw());
                    if a < b {
                        (a, b)
                    } else {
                        (b, a)
                    }
                })
            })
            .collect();
        let mut h_sparse = 0usize;
        let mut h_tree = 0usize;
        let mut h_between = 0usize;
        for &(a, b) in &h {
            let (u, v) = (lca_graph::VertexId::from(a), lca_graph::VertexId::from(b));
            if is_sparse(u) || is_sparse(v) {
                h_sparse += 1;
            } else if tree.contains(&(a, b)) {
                h_tree += 1;
            } else {
                h_between += 1;
            }
        }

        // Probe costs split by query category.
        let counter = CountingOracle::new(&g);
        let lca = K2Spanner::new(&counter, params, seed);
        let sample = sample_edges(&g, 150, seed.derive(1));
        let (mut s_sum, mut s_cnt, mut d_sum, mut d_cnt, mut max) = (0u64, 0u64, 0u64, 0u64, 0u64);
        for (u, v) in sample {
            let scope = counter.scoped();
            lca.contains(u, v).expect("edge");
            let c = scope.cost().total();
            max = max.max(c);
            if is_sparse(u) || is_sparse(v) {
                s_sum += c;
                s_cnt += 1;
            } else {
                d_sum += c;
                d_cnt += 1;
            }
        }
        let row = Row {
            n,
            degree: d,
            k,
            sparse_vertices: part.sparse_count(),
            cells: part.cell_count(),
            e_sparse,
            e_dense,
            h_sparse,
            h_tree,
            h_between,
            probe_mean_sparse: if s_cnt == 0 {
                0.0
            } else {
                s_sum as f64 / s_cnt as f64
            },
            probe_mean_dense: if d_cnt == 0 {
                0.0
            } else {
                d_sum as f64 / d_cnt as f64
            },
            probe_max: max,
        };
        table.row([
            row.n.to_string(),
            row.degree.to_string(),
            row.k.to_string(),
            row.sparse_vertices.to_string(),
            row.cells.to_string(),
            row.e_sparse.to_string(),
            row.e_dense.to_string(),
            row.h_sparse.to_string(),
            row.h_tree.to_string(),
            row.h_between.to_string(),
            format!("{:.1}", row.probe_mean_sparse),
            format!("{:.1}", row.probe_mean_dense),
            row.probe_max.to_string(),
        ]);
        record_json("table3", &row);
    }
    table
        .print("Table 3 — O(k²)-spanner categorization: E_sparse/E_dense and H_sparse/H^(I)/H^(B)");
}
