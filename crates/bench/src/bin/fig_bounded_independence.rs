//! Figure F5 — Section 5 validation: the hitting-set properties (HI)/(HII)
//! and the rank-block distribution under Θ(log n)-wise independent hashing,
//! compared with low independence and with full independence.
//!
//! Run: `cargo run --release -p lca-bench --bin fig_bounded_independence`

use lca_bench::{record_json, Table};
use lca_rand::{Coin, RankAssigner, Seed, SplitMix64};

#[derive(serde::Serialize)]
struct HitRow {
    independence: String,
    n: usize,
    prob: f64,
    mean_centers: f64,
    min_centers: u64,
    max_centers: u64,
    empty_prefix_rate: f64,
}

fn main() {
    let n = 50_000usize;
    let prob = 0.01f64; // ≈ log n / Δ with Δ = 1000
    let prefix = 1000usize; // the "first Δ neighbors" window of (HII)
    let seeds = 40u64;

    let mut table = Table::new([
        "independence",
        "E[|S|]=pn",
        "mean |S|",
        "min",
        "max",
        "P[prefix empty] (HII failure)",
    ]);
    for (name, indep) in [("2-wise", 2usize), ("8-wise", 8), ("Θ(log n)-wise", 24)] {
        let mut sizes = Vec::new();
        let mut empty = 0u64;
        for s in 0..seeds {
            let coin = Coin::new(Seed::new(1000 + s), prob, indep);
            let size = (0..n as u64).filter(|&x| coin.flip(x)).count() as u64;
            sizes.push(size);
            // (HII): does the window [0, prefix) contain a sampled element?
            if !(0..prefix as u64).any(|x| coin.flip(x)) {
                empty += 1;
            }
        }
        let mean = sizes.iter().sum::<u64>() as f64 / seeds as f64;
        let row = HitRow {
            independence: name.into(),
            n,
            prob,
            mean_centers: mean,
            min_centers: *sizes.iter().min().unwrap(),
            max_centers: *sizes.iter().max().unwrap(),
            empty_prefix_rate: empty as f64 / seeds as f64,
        };
        table.row([
            name.to_string(),
            format!("{:.0}", prob * n as f64),
            format!("{:.1}", row.mean_centers),
            row.min_centers.to_string(),
            row.max_centers.to_string(),
            format!("{:.3}", row.empty_prefix_rate),
        ]);
        record_json("fig_bounded_independence", &row);
    }
    // Full independence reference.
    {
        let mut sizes = Vec::new();
        let mut empty = 0u64;
        for s in 0..seeds {
            let mut rng = SplitMix64::new(9000 + s);
            let mut size = 0u64;
            let mut prefix_hit = false;
            for x in 0..n as u64 {
                let heads = rng.next_f64() < prob;
                if heads {
                    size += 1;
                    if (x as usize) < prefix {
                        prefix_hit = true;
                    }
                }
            }
            sizes.push(size);
            if !prefix_hit {
                empty += 1;
            }
        }
        let mean = sizes.iter().sum::<u64>() as f64 / seeds as f64;
        table.row([
            "full (reference)".to_string(),
            format!("{:.0}", prob * n as f64),
            format!("{mean:.1}"),
            sizes.iter().min().unwrap().to_string(),
            sizes.iter().max().unwrap().to_string(),
            format!("{:.3}", empty as f64 / seeds as f64),
        ]);
    }
    table.print("Figure F5a — hitting-set properties (HI)/(HII) under bounded independence");

    // Rank blocks: each block of r(v) should be zero with probability 2^-N.
    let mut t2 = Table::new([
        "k (blocks)",
        "N bits",
        "block",
        "P[block = 0]",
        "expected 2^-N",
    ]);
    for &k in &[2usize, 4] {
        let r = RankAssigner::for_spanner(Seed::new(7), 1 << 20, k);
        let nn = 20_000u64;
        for b in 0..k {
            let zeros = (0..nn).filter(|&v| r.block(v, b) == 0).count() as f64 / nn as f64;
            t2.row([
                k.to_string(),
                r.block_bits().to_string(),
                b.to_string(),
                format!("{zeros:.4}"),
                format!("{:.4}", 0.5f64.powi(r.block_bits() as i32)),
            ]);
        }
    }
    t2.print("Figure F5b — rank block distribution (Section 5.2)");
}
