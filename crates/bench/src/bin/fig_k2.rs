//! Figure F3 — the O(k²)-spanner trade-off: size and realized stretch vs k,
//! probe cost vs ∆, and the Idea-V ablation (q = 1, the Lenzen–Levi rule,
//! vs the paper's q = Θ(n^{1/k} log n)).
//!
//! Run: `cargo run --release -p lca-bench --bin fig_k2`

// This binary's product is its stdout; the workspace print ban
// applies to library code, not report/CLI entry points.
#![allow(clippy::print_stdout)]
use lca_bench::{probe_stats, record_json, sample_edges, sampled_stretch, Table};
use lca_core::global::{into_subgraph, k2_spanner_global};
use lca_core::{K2Params, K2Spanner};
use lca_graph::gen::RegularBuilder;
use lca_probe::CountingOracle;
use lca_rand::Seed;

#[derive(serde::Serialize)]
struct Point {
    n: usize,
    degree: usize,
    k: usize,
    q: usize,
    kept: usize,
    size_over_envelope: f64,
    stretch_measured: i64,
    stretch_budget: usize,
    probe_mean: f64,
    probe_max: u64,
}

fn run_config(n: usize, d: usize, k: usize, q_override: Option<usize>, seed: Seed) -> Point {
    let g = RegularBuilder::new(n, d)
        .seed(seed.derive((n * 31 + d * 7 + k) as u64))
        .build()
        .expect("regular graph");
    // Demo-scale center constant (see K2Params::with_center_constant docs).
    let mut params = K2Params::with_center_constant(n, k, 3.0);
    if let Some(q) = q_override {
        params.q = q;
    }
    let h = into_subgraph(&g, &k2_spanner_global(&g, &params, seed));
    let counter = CountingOracle::new(&g);
    let lca = K2Spanner::new(&counter, params.clone(), seed);
    let sample = sample_edges(&g, 80, seed.derive(1));
    let st = probe_stats(&counter, &lca, &sample);
    let budget = (2 * k + 1) * (2 * k + 2);
    let stretch = sampled_stretch(&g, &h, 250, budget as u32, seed.derive(2));
    Point {
        n,
        degree: d,
        k,
        q: params.q,
        kept: h.edge_count(),
        size_over_envelope: h.edge_count() as f64 / (n as f64).powf(1.0 + 1.0 / k as f64),
        stretch_measured: stretch.map_or(-1, |s| s as i64),
        stretch_budget: budget,
        probe_mean: st.mean,
        probe_max: st.max,
    }
}

fn main() {
    let seed = Seed::new(0xF36);
    let mut table = Table::new([
        "n",
        "d",
        "k",
        "q",
        "|H|",
        "|H|/n^{1+1/k}",
        "stretch",
        "budget k²-ish",
        "probes mean",
        "probes max",
    ]);
    let mut push = |p: &Point| {
        table.row([
            p.n.to_string(),
            p.degree.to_string(),
            p.k.to_string(),
            p.q.to_string(),
            p.kept.to_string(),
            format!("{:.2}", p.size_over_envelope),
            p.stretch_measured.to_string(),
            p.stretch_budget.to_string(),
            format!("{:.0}", p.probe_mean),
            p.probe_max.to_string(),
        ]);
        record_json("fig_k2", p);
    };

    // k sweep at fixed degree.
    for &k in &[1usize, 2, 3, 4] {
        let p = run_config(1200, 4, k, None, seed);
        push(&p);
    }
    // Degree sweep at fixed k (probe cost should grow steeply with ∆ — the
    // ∆⁴ term of Theorem 1.2).
    for &d in &[3usize, 4, 6, 8] {
        let p = run_config(900, d, 2, None, seed.derive(50 + d as u64));
        push(&p);
    }
    // Idea-V ablation: q = 1 reproduces the Lenzen–Levi connection rule —
    // fewer edges, weaker (longer) inter-cell paths.
    for &q in &[1usize, 4] {
        let p = run_config(1200, 4, 2, Some(q), seed.derive(90 + q as u64));
        push(&p);
    }

    table.print("Figure F3 — O(k²)-spanner: k sweep, ∆ sweep, q ablation (4-regular unless noted)");
    println!(
        "\n(stretch = sampled max detour; -1 flags a sampled edge without a detour within budget.)"
    );
    println!(
        "(last two rows: q=1 is the Lenzen–Levi rule of [25]; larger q is the paper's Idea V.)"
    );
}
