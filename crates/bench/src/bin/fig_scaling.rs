//! Figure F1 — probe-complexity scaling of Theorem 1.1: measured probes per
//! query vs n on dense G(n,p), with the fitted log-log exponent next to the
//! predicted 1 − 1/(2r) ∈ {0.75, 0.833…}.
//!
//! Run: `cargo run --release -p lca-bench --bin fig_scaling`

// This binary's product is its stdout; the workspace print ban
// applies to library code, not report/CLI entry points.
#![allow(clippy::print_stdout)]
use lca_bench::{loglog_slope, probe_stats, record_json, sample_edges, Table};
use lca_core::{FiveSpanner, FiveSpannerParams, Lca, ThreeSpanner, ThreeSpannerParams};
use lca_graph::gen::GnpBuilder;
use lca_probe::CountingOracle;
use lca_rand::Seed;

#[derive(serde::Serialize)]
struct Point {
    algorithm: &'static str,
    n: usize,
    m: usize,
    probe_mean: f64,
    probe_max: u64,
    mean_over_logsq: f64,
}

fn main() {
    let seed = Seed::new(0xF16);
    let sizes = [256usize, 512, 1024, 2048, 4096];
    let mut table = Table::new([
        "algorithm",
        "n",
        "m",
        "probes mean",
        "probes max",
        "mean/ln²n",
    ]);
    let mut series3: Vec<(f64, f64)> = Vec::new();
    let mut series5: Vec<(f64, f64)> = Vec::new();
    let mut series3d: Vec<(f64, f64)> = Vec::new();
    let mut series5d: Vec<(f64, f64)> = Vec::new();

    for &n in &sizes {
        let g = GnpBuilder::new(n, 0.25).seed(seed.derive(n as u64)).build();
        let lnsq = (n as f64).ln().powi(2);

        let counter = CountingOracle::new(&g);
        let lca = ThreeSpanner::new(&counter, ThreeSpannerParams::for_n(n), seed);
        let sample = sample_edges(&g, 150, seed.derive(1));
        let st = probe_stats(&counter, &lca, &sample);
        series3.push((n as f64, st.mean));
        series3d.push((n as f64, st.mean / lnsq));
        let p = Point {
            algorithm: lca.name(),
            n,
            m: g.edge_count(),
            probe_mean: st.mean,
            probe_max: st.max,
            mean_over_logsq: st.mean / lnsq,
        };
        record_json("fig_scaling", &p);
        table.row([
            p.algorithm.to_string(),
            n.to_string(),
            p.m.to_string(),
            format!("{:.1}", p.probe_mean),
            p.probe_max.to_string(),
            format!("{:.2}", p.mean_over_logsq),
        ]);

        let counter = CountingOracle::new(&g);
        let lca = FiveSpanner::new(&counter, FiveSpannerParams::for_n(n), seed);
        let sample = sample_edges(&g, 60, seed.derive(2));
        let st = probe_stats(&counter, &lca, &sample);
        series5.push((n as f64, st.mean));
        series5d.push((n as f64, st.mean / lnsq));
        let p = Point {
            algorithm: lca.name(),
            n,
            m: g.edge_count(),
            probe_mean: st.mean,
            probe_max: st.max,
            mean_over_logsq: st.mean / lnsq,
        };
        record_json("fig_scaling", &p);
        table.row([
            p.algorithm.to_string(),
            n.to_string(),
            p.m.to_string(),
            format!("{:.1}", p.probe_mean),
            p.probe_max.to_string(),
            format!("{:.2}", p.mean_over_logsq),
        ]);
    }

    table.print("Figure F1 — probe scaling on dense G(n, 0.25)");
    println!();
    println!(
        "three-spanner: raw slope {:.3}, log²-deflated slope {:.3}  (paper: n^0.750)",
        loglog_slope(&series3),
        loglog_slope(&series3d)
    );
    println!(
        "five-spanner:  raw slope {:.3}, log²-deflated slope {:.3}  (paper: n^0.833)",
        loglog_slope(&series5),
        loglog_slope(&series5d)
    );
    println!("(sublinearity check: probes ≪ m at every n; see columns above)");
}
