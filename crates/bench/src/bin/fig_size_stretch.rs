//! Figure F2 — spanner size scaling Õ(n^{1+1/r}) and the realized stretch
//! distribution (sampled detour histogram) for the 3- and 5-spanner LCAs.
//!
//! Run: `cargo run --release -p lca-bench --bin fig_size_stretch`

// This binary's product is its stdout; the workspace print ban
// applies to library code, not report/CLI entry points.
#![allow(clippy::print_stdout)]
use lca_bench::{loglog_slope, record_json, Table};
use lca_core::global::{five_spanner_global, into_subgraph, three_spanner_global};
use lca_core::{FiveSpannerParams, ThreeSpannerParams};
use lca_graph::gen::GnpBuilder;
use lca_rand::{Seed, SplitMix64};

#[derive(serde::Serialize)]
struct Point {
    algorithm: &'static str,
    n: usize,
    m: usize,
    kept: usize,
    keep_ratio: f64,
    size_over_envelope: f64,
    stretch_histogram: Vec<usize>,
}

fn detour_histogram(
    g: &lca_graph::Graph,
    h: &lca_graph::Subgraph,
    cap: u32,
    samples: usize,
    seed: Seed,
) -> Vec<usize> {
    let omitted: Vec<_> = g.edges().filter(|&(u, v)| !h.has_edge(u, v)).collect();
    let mut hist = vec![0usize; cap as usize + 1]; // index = detour length, 0 = none found
    if omitted.is_empty() {
        return hist;
    }
    let mut rng = SplitMix64::new(seed.value());
    for _ in 0..samples.min(omitted.len()) {
        let (u, v) = omitted[rng.next_below(omitted.len() as u64) as usize];
        match h.distance_within(u, v, cap) {
            Some(d) => hist[d as usize] += 1,
            None => hist[0] += 1,
        }
    }
    hist
}

fn main() {
    let seed = Seed::new(0xF26);
    let sizes = [256usize, 512, 1024, 2048, 4096];
    let mut table = Table::new([
        "algorithm",
        "n",
        "m",
        "|H|",
        "|H|/m",
        "|H|/n^{1+1/r}",
        "detours d=2",
        "d=3",
        "d=4..5",
        "none",
    ]);
    let mut s3: Vec<(f64, f64)> = Vec::new();
    let mut s5: Vec<(f64, f64)> = Vec::new();

    for &n in &sizes {
        let g = GnpBuilder::new(n, 0.25).seed(seed.derive(n as u64)).build();

        let h = into_subgraph(
            &g,
            &three_spanner_global(&g, &ThreeSpannerParams::for_n(n), seed),
        );
        let hist = detour_histogram(&g, &h, 5, 400, seed.derive(1));
        let env = (n as f64).powf(1.5);
        let p = Point {
            algorithm: "three-spanner",
            n,
            m: g.edge_count(),
            kept: h.edge_count(),
            keep_ratio: h.edge_count() as f64 / g.edge_count() as f64,
            size_over_envelope: h.edge_count() as f64 / env,
            stretch_histogram: hist.clone(),
        };
        s3.push((n as f64, h.edge_count() as f64));
        record_json("fig_size_stretch", &p);
        table.row([
            "three-spanner".to_string(),
            n.to_string(),
            g.edge_count().to_string(),
            h.edge_count().to_string(),
            format!("{:.3}", p.keep_ratio),
            format!("{:.2}", p.size_over_envelope),
            hist[2].to_string(),
            hist[3].to_string(),
            (hist[4] + hist[5]).to_string(),
            hist[0].to_string(),
        ]);

        let h = into_subgraph(
            &g,
            &five_spanner_global(&g, &FiveSpannerParams::for_n(n), seed),
        );
        let hist = detour_histogram(&g, &h, 5, 400, seed.derive(2));
        let env = (n as f64).powf(4.0 / 3.0);
        let p = Point {
            algorithm: "five-spanner",
            n,
            m: g.edge_count(),
            kept: h.edge_count(),
            keep_ratio: h.edge_count() as f64 / g.edge_count() as f64,
            size_over_envelope: h.edge_count() as f64 / env,
            stretch_histogram: hist.clone(),
        };
        s5.push((n as f64, h.edge_count() as f64));
        record_json("fig_size_stretch", &p);
        table.row([
            "five-spanner".to_string(),
            n.to_string(),
            g.edge_count().to_string(),
            h.edge_count().to_string(),
            format!("{:.3}", p.keep_ratio),
            format!("{:.2}", p.size_over_envelope),
            hist[2].to_string(),
            hist[3].to_string(),
            (hist[4] + hist[5]).to_string(),
            hist[0].to_string(),
        ]);
    }

    table.print("Figure F2 — spanner size scaling and detour histograms on G(n, 0.25)");
    println!();
    println!(
        "three-spanner size slope {:.3} (paper: 1.5 + o(1));  five-spanner size slope {:.3} (paper: 1.333 + o(1))",
        loglog_slope(&s3),
        loglog_slope(&s5)
    );
    println!("('none' = sampled omitted edge with no detour within 5 hops — must be 0 for both)");
}
