//! Figure F4 — the Theorem 1.3 lower bound made empirical: distinguishing
//! advantage between D⁺ and D⁻ as the probe budget sweeps across the
//! Ω(min{√n, n/d}) threshold.
//!
//! Run: `cargo run --release -p lca-bench --bin fig_lower_bound`

// This binary's product is its stdout; the workspace print ban
// applies to library code, not report/CLI entry points.
#![allow(clippy::print_stdout)]
use lca_bench::{record_json, Table};
use lca_lowerbound::distinguishing_experiment;
use lca_rand::Seed;

#[derive(serde::Serialize)]
struct Point {
    n: usize,
    d: usize,
    budget: u64,
    plus_accept: f64,
    minus_accept: f64,
    advantage: f64,
    threshold: f64,
}

fn main() {
    let seed = Seed::new(0xF46);
    let trials = 24;
    let mut table = Table::new([
        "n",
        "d",
        "budget",
        "accept D+",
        "accept D-",
        "advantage",
        "min(√n, n/d)",
    ]);
    for &(n, d) in &[(102usize, 3usize), (402, 3), (1602, 3)] {
        let threshold = (n as f64).sqrt().min(n as f64 / d as f64);
        let budgets: Vec<u64> = vec![
            2,
            (threshold / 4.0) as u64,
            threshold as u64,
            (threshold * 4.0) as u64,
            (threshold * 16.0) as u64,
            (n * d) as u64 * 4,
        ];
        for budget in budgets {
            let o = distinguishing_experiment(n, d, budget.max(1), trials, seed.derive(budget));
            let p = Point {
                n,
                d,
                budget: budget.max(1),
                plus_accept: o.plus_accept,
                minus_accept: o.minus_accept,
                advantage: o.advantage(),
                threshold,
            };
            table.row([
                n.to_string(),
                d.to_string(),
                p.budget.to_string(),
                format!("{:.2}", p.plus_accept),
                format!("{:.2}", p.minus_accept),
                format!("{:.2}", p.advantage),
                format!("{:.0}", threshold),
            ]);
            record_json("fig_lower_bound", &p);
        }
    }
    table.print("Figure F4 — D⁺/D⁻ distinguishing advantage vs probe budget (Theorem 1.3)");
    println!(
        "\n(Any LCA outputting o(m) edges must distinguish the families on the designated edge;"
    );
    println!(" the advantage stays ≈0 until the budget clears the min(√n, n/d) threshold — hence the Ω bound.)");
}
