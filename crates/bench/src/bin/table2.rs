//! Regenerates **Table 2** (5-spanner edge categorization): per edge class
//! — E_low, E_bckt, E_rep, E_super — the number of edges in the class and
//! the measured per-query probe cost, next to the paper's bounds.
//!
//! Run: `cargo run --release -p lca-bench --bin table2`

use std::collections::HashMap;

use lca_bench::{record_json, sample_edges, Table};
use lca_core::{EdgeClass, EdgeSubgraphLca, FiveSpanner, FiveSpannerParams};
use lca_graph::gen::{ChungLuBuilder, GnpBuilder};
use lca_graph::Graph;
use lca_probe::CountingOracle;
use lca_rand::Seed;

#[derive(serde::Serialize)]
struct Row {
    workload: String,
    n: usize,
    class: String,
    edges_in_class: usize,
    class_fraction: f64,
    probe_mean: f64,
    probe_max: u64,
    bound: String,
}

fn run(name: &str, graph: &Graph, table: &mut Table) {
    let n = graph.vertex_count();
    let seed = Seed::new(0xBEEF);
    let params = FiveSpannerParams::for_n(n);
    let counter = CountingOracle::new(graph);
    let lca = FiveSpanner::new(&counter, params, seed);

    // Classify every edge (cheap), measure probes on a per-class sample.
    let mut class_count: HashMap<EdgeClass, usize> = HashMap::new();
    for (u, v) in graph.edges() {
        *class_count.entry(lca.classify_edge(u, v)).or_default() += 1;
    }
    let sample = sample_edges(graph, 600, seed.derive(1));
    let mut probes: HashMap<EdgeClass, (u64, u64, u64)> = HashMap::new(); // (sum, max, count)
    for (u, v) in sample {
        let class = lca.classify_edge(u, v);
        let scope = counter.scoped();
        lca.contains(u, v).expect("edge");
        let c = scope.cost().total();
        let e = probes.entry(class).or_default();
        e.0 += c;
        e.1 = e.1.max(c);
        e.2 += 1;
    }

    let bound = |c: EdgeClass| match c {
        EdgeClass::Low => "O(1) probes, O(n^{1+1/r}) edges",
        EdgeClass::Bucket => "O((Δs+Δm²)log²n) probes",
        EdgeClass::Representative => "O(Δs log³n) probes",
        EdgeClass::Super => "O(Δs log n) probes",
        EdgeClass::Gap => "(outside paper regime)",
    };
    for class in [
        EdgeClass::Low,
        EdgeClass::Bucket,
        EdgeClass::Representative,
        EdgeClass::Super,
        EdgeClass::Gap,
    ] {
        let count = class_count.get(&class).copied().unwrap_or(0);
        if count == 0 && matches!(class, EdgeClass::Gap) {
            continue;
        }
        let (sum, max, cnt) = probes.get(&class).copied().unwrap_or((0, 0, 0));
        let row = Row {
            workload: name.into(),
            n,
            class: class.to_string(),
            edges_in_class: count,
            class_fraction: count as f64 / graph.edge_count().max(1) as f64,
            probe_mean: if cnt == 0 {
                0.0
            } else {
                sum as f64 / cnt as f64
            },
            probe_max: max,
            bound: bound(class).into(),
        };
        table.row([
            row.workload.clone(),
            row.n.to_string(),
            row.class.clone(),
            row.edges_in_class.to_string(),
            format!("{:.3}", row.class_fraction),
            format!("{:.1}", row.probe_mean),
            row.probe_max.to_string(),
            row.bound.clone(),
        ]);
        record_json("table2", &row);
    }
}

/// A hub-dominated workload that populates E_rep: `hubs` super-high vertices
/// adjacent to every spoke, plus sparse spoke–spoke cross-links. Spokes are
/// mid-degree and *crowded* (their neighborhoods are mostly hubs), so the
/// cross-links land in E(V_mid, V_crwd) = E_rep.
fn hubs_and_crosslinks(hubs: usize, spokes: usize, crosslink_p: f64, seed: Seed) -> Graph {
    let n = hubs + spokes;
    let mut b = lca_graph::GraphBuilder::new(n);
    for h in 0..hubs {
        for s in 0..spokes {
            b = b.edge(h, hubs + s);
        }
    }
    let mut rng = lca_rand::SplitMix64::new(seed.value());
    for a in 0..spokes {
        for c in (a + 1)..spokes {
            if rng.next_f64() < crosslink_p {
                b = b.edge(hubs + a, hubs + c);
            }
        }
    }
    b.shuffle_adjacency(seed.derive(1))
        .build()
        .expect("hub graph is simple")
}

fn main() {
    let mut table = Table::new([
        "workload",
        "n",
        "class",
        "#edges",
        "fraction",
        "probes mean",
        "probes max",
        "paper bound",
    ]);
    let dense = GnpBuilder::new(1024, 0.25).seed(Seed::new(1)).build();
    run("G(1024,0.25)", &dense, &mut table);
    let pl = ChungLuBuilder::power_law(4000, 2.3, 12.0)
        .seed(Seed::new(2))
        .build();
    run("power-law β=2.3", &pl, &mut table);
    let hubs = hubs_and_crosslinks(60, 2500, 0.012, Seed::new(3));
    run("hubs+crosslinks", &hubs, &mut table);
    table.print("Table 2 — 5-spanner edge categorization (Δs = Δ_super, Δm = Δ_med)");
}
