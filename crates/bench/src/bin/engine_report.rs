//! The unified-API serving report: every registered algorithm, constructed
//! through the registry and served through the `QueryEngine`, with raw and
//! distinct probe measures for the spanners and batch timings for all.
//!
//! Run: `cargo run --release -p lca-bench --bin engine_report`
//!
//! With `--implicit`, the same seven algorithms are served against a
//! generator-backed implicit G(n, c/n) oracle at n = 10⁷ instead of a
//! materialized graph — sampled query batches, measured probes, and peak
//! RSS as the no-materialization witness.
//! Run: `cargo run --release -p lca-bench --bin engine_report -- --implicit`
//!
//! With `--serve`, an `lca-serve` daemon is spun up in-process on an
//! ephemeral port and driven end-to-end by the closed-loop load generator
//! (mixed algorithm traffic over an implicit G(n, c/n) session per kind,
//! every answer verified against a direct `LcaBuilder` query), then its
//! `stats` are reported per session. See `docs/PROTOCOL.md` for the wire
//! format.
//! Run: `cargo run --release -p lca-bench --bin engine_report -- --serve`
//!
//! With `--fleet`, two backends plus the `lca-gateway` HTTP front end run
//! in-process and the same verified mixed load is driven twice — once
//! directly at a backend over raw TCP, once through the gateway over
//! HTTP — so the snapshot records fleet qps/latency *and* the gateway's
//! overhead against the direct path, plus the per-shard routing
//! histogram. See the fleet-topology section of `docs/ARCHITECTURE.md`.
//! Run: `cargo run --release -p lca-bench --bin engine_report -- --fleet`

// This binary's product is its stdout; the workspace print ban
// applies to library code, not report/CLI entry points.
#![allow(clippy::print_stdout)]
use std::time::Instant;

use lca::core::DynQuery;
use lca::prelude::*;
use lca_bench::{peak_rss_bytes, record_json, write_json, Table};
use lca_core::{measure_queries_distinct, QueryEngine};

/// One algorithm's row of the machine-readable `BENCH_engine*.json`
/// trajectory snapshot: throughput, probe/latency percentiles, and the
/// exhaustion rate under a median probe budget.
#[derive(serde::Serialize)]
struct TrajectoryRow {
    algorithm: String,
    query_kind: String,
    queries: usize,
    qps: f64,
    ns_per_probe: f64,
    probes_p50: u64,
    probes_p99: u64,
    latency_p50_us: u64,
    latency_p99_us: u64,
    budget_probes: u64,
    exhaustion_rate: f64,
}

#[derive(serde::Serialize)]
struct Trajectory {
    mode: String,
    n: usize,
    rows: Vec<TrajectoryRow>,
}

fn pct(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Measures one kind's trajectory row in three passes: a serial pass over
/// one shared instance for serving qps and latency percentiles; a *cold*
/// probe pass (fresh instance per query, so cross-query memos cannot hide
/// costs) for the probe percentiles; and a budgeted parallel batch capped
/// at the cold median for the exhaustion rate.
fn trajectory_row(
    config: &LcaConfig,
    oracle: &(impl Oracle + Clone + Send + Sync),
    queries: &[DynQuery],
    engine: &QueryEngine,
) -> TrajectoryRow {
    // The serial pass runs through a counting decorator so the snapshot can
    // report amortized wall time per probe actually issued — the probe
    // pipeline's headline number (counter overhead is two relaxed atomic
    // adds per probe, noise next to a query).
    let probe_counter = CountingOracle::new(oracle);
    let shared = config.build(&probe_counter);
    let mut lats: Vec<u64> = Vec::with_capacity(queries.len());
    let t = Instant::now();
    for &q in queries {
        let started = Instant::now();
        shared.query(q).expect("trajectory query in range");
        lats.push(started.elapsed().as_micros() as u64);
    }
    let elapsed = t.elapsed().as_secs_f64();
    let probes_total = probe_counter.counts().total();
    lats.sort_unstable();

    let cold_sample = &queries[..queries.len().min(256)];
    let mut probes: Vec<u64> = Vec::with_capacity(cold_sample.len());
    for &q in cold_sample {
        let cold = config.build(oracle);
        let ctx = QueryCtx::unlimited();
        cold.query_ctx(q, &ctx).expect("trajectory query in range");
        probes.push(ctx.spent());
    }
    probes.sort_unstable();
    let budget_probes = pct(&probes, 0.5).max(1);

    let budgeted = config.build(oracle);
    let run =
        engine.query_batch_budgeted(&budgeted, queries, &QueryBudget::max_probes(budget_probes));
    TrajectoryRow {
        algorithm: config.kind.name().to_owned(),
        query_kind: config.kind.query_kind().to_string(),
        queries: queries.len(),
        qps: if elapsed > 0.0 {
            queries.len() as f64 / elapsed
        } else {
            0.0
        },
        ns_per_probe: if probes_total > 0 {
            elapsed * 1e9 / probes_total as f64
        } else {
            0.0
        },
        probes_p50: pct(&probes, 0.5),
        probes_p99: pct(&probes, 0.99),
        latency_p50_us: pct(&lats, 0.5),
        latency_p99_us: pct(&lats, 0.99),
        budget_probes,
        exhaustion_rate: run.exhaustion_rate(),
    }
}

#[derive(serde::Serialize)]
struct Row {
    algorithm: String,
    query_kind: String,
    probe_bound: String,
    queries: usize,
    yes_answers: usize,
    batch_ms: f64,
    probe_mean: f64,
    probe_max: u64,
    distinct_mean: f64,
    distinct_max: u64,
    shards: usize,
}

#[derive(serde::Serialize)]
struct ImplicitRow {
    algorithm: &'static str,
    query_kind: String,
    n: usize,
    queries: usize,
    yes_answers: usize,
    batch_ms: f64,
    probe_mean: f64,
    probe_max: u64,
    shards: usize,
    peak_rss_mb: f64,
}

/// The `--implicit` report: sampled batches over a G(n, c/n) oracle that is
/// never materialized.
fn implicit_report() {
    let n = 10_000_000;
    let c = 6.0;
    let seed = Seed::new(0x11CB);
    let oracle = ImplicitGnp::new(n, c, seed.derive(0));
    let engine = QueryEngine::with_threads(4);
    println!(
        "implicit serving report: G(n = {n}, c = {c}), {} slots, engine threads = {}",
        oracle.slots(),
        engine.threads()
    );

    let mut table = Table::new([
        "algorithm",
        "kind",
        "queries",
        "yes",
        "batch ms",
        "probes mean",
        "probes max",
        "shards",
        "peak RSS MB",
    ]);
    let mut trajectory = Vec::new();
    for kind in AlgorithmKind::all() {
        let config = LcaConfig::new(kind, seed);
        let queries: Vec<DynQuery> =
            kind.queries_from(&oracle, QuerySource::sample(512, seed.derive(1)));
        trajectory.push(trajectory_row(&config, &&oracle, &queries, &engine));

        let algo = config.build(&oracle);
        let t = Instant::now();
        let answers = engine.query_batch(&algo, &queries);
        let batch_ms = t.elapsed().as_secs_f64() * 1e3;
        let yes = answers.iter().filter(|a| **a == Ok(true)).count();

        let run = engine.measure_batch(&queries, &oracle, |counted| config.build(counted));

        let row = ImplicitRow {
            algorithm: kind.name(),
            query_kind: kind.query_kind().to_string(),
            n,
            queries: queries.len(),
            yes_answers: yes,
            batch_ms,
            probe_mean: run.per_query_mean,
            probe_max: run.per_query_max,
            shards: run.per_shard.len(),
            peak_rss_mb: peak_rss_bytes().map_or(f64::NAN, |b| b as f64 / (1 << 20) as f64),
        };
        table.row([
            row.algorithm.to_string(),
            row.query_kind.clone(),
            row.queries.to_string(),
            row.yes_answers.to_string(),
            format!("{:.1}", row.batch_ms),
            format!("{:.1}", row.probe_mean),
            row.probe_max.to_string(),
            row.shards.to_string(),
            format!("{:.0}", row.peak_rss_mb),
        ]);
        record_json("engine_report_implicit", &row);
    }
    write_json(
        "BENCH_engine_implicit",
        &Trajectory {
            mode: "implicit".to_owned(),
            n,
            rows: trajectory,
        },
    );
    table.print("Unified API over an implicit oracle — no graph was materialized");
    println!("\n(queries are sampled through O(1) probes each; RSS is the whole process —");
    println!("the 10^7-vertex input itself occupies zero bytes beyond its seed.)");
}

#[derive(serde::Serialize)]
struct ServeRow {
    session: String,
    kind: String,
    queries: u64,
    qps: f64,
    latency_p50_us: u64,
    latency_p99_us: u64,
    probes_p50: u64,
    probes_p99: u64,
    cache_hit_rate: f64,
    errors: u64,
}

/// The `--serve` report: daemon + load generator end-to-end, in-process.
/// Six passes — unbudgeted, budget-starved, binary-framed, many-connection
/// fan-in (the C10k witness, with the syscall-budget ratios measured over
/// its window), and a fixed-vs-adaptive budget pair on the heavy-tailed
/// kinds (cold-median client budget against a `--adaptive-budgets` daemon
/// fitting p99) — all fully verified.
fn serve_report() {
    use lca_serve::loadgen::{self, LoadgenConfig};
    use lca_serve::server::{bind, Server, ServerConfig};

    // The fan-in pass holds >2000 sockets (both ends in-process).
    lca_serve::raise_fd_limit(8192).expect("raise fd limit");
    let listener = bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("local addr").to_string();
    let server = Server::new(ServerConfig::default());
    let serve_loop = {
        let server = server.clone();
        std::thread::spawn(move || server.serve(listener).expect("serve loop"))
    };

    let cfg = LoadgenConfig {
        requests: 4_000,
        concurrency: 4,
        kinds: vec![
            AlgorithmKind::Classic(ClassicKind::Mis),
            AlgorithmKind::Classic(ClassicKind::Matching),
            AlgorithmKind::Spanner(SpannerKind::Three),
            AlgorithmKind::Spanner(SpannerKind::Five),
        ],
        family: ImplicitFamily::Gnp,
        n: 1_000_000,
        seed: 0x11CC,
        verify: true,
        ..LoadgenConfig::default()
    };
    println!(
        "serving report: lca-serve @ {addr}, {} requests x {} connections, implicit G(n = {}, c/n), verify on",
        cfg.requests, cfg.concurrency, cfg.n
    );
    let run = loadgen::run(&addr, &cfg).expect("loadgen run");

    let r = &run.report;
    assert_eq!(r.errors, 0, "protocol errors during serve report");
    assert_eq!(
        r.mismatches, 0,
        "served answers diverged from direct queries"
    );
    println!(
        "loadgen: {} ok / {} requests, {:.0} qps, p50 {} µs, p99 {} µs, {} overloaded",
        r.ok, r.requests, r.qps, r.p50_us, r.p99_us, r.overloaded
    );
    record_json("engine_report_serve_load", r);

    // A second, budget-starved pass: fresh sessions under a tight per-query
    // probe cap, still fully verified (budget trips are tolerated exactly
    // when a cold local run trips too). This is the tail-latency story of
    // the budget redesign, recorded in the trajectory snapshot.
    let budgeted_cfg = LoadgenConfig {
        max_probes: Some(48),
        session_prefix: "budgeted".to_owned(),
        ..cfg.clone()
    };
    let budgeted = loadgen::run(&addr, &budgeted_cfg).expect("budgeted loadgen run");
    let b = &budgeted.report;
    assert_eq!(b.errors, 0, "protocol errors during budgeted serve report");
    assert_eq!(b.mismatches, 0, "budgeted answers diverged");
    println!(
        "budgeted loadgen (max_probes=48): {} ok, {} budget-exhausted ({:.1}%), {:.0} qps",
        b.ok,
        b.budget_exhausted,
        100.0 * b.budget_exhausted as f64 / b.requests.max(1) as f64,
        b.qps
    );

    // Binary-framing pass: the same verified workload with responses
    // negotiated to length-prefixed binary frames. The loadgen re-renders
    // every decoded frame to the canonical JSON line before checking, so
    // a green verify here proves the two framings are answer-identical.
    let binary_cfg = LoadgenConfig {
        frames: lca_serve::proto::FrameFormat::Binary,
        session_prefix: "binframe".to_owned(),
        ..cfg.clone()
    };
    let binary = loadgen::run(&addr, &binary_cfg).expect("binary-frame loadgen run");
    let bf = &binary.report;
    assert_eq!(bf.errors, 0, "protocol errors during binary-frame report");
    assert_eq!(bf.mismatches, 0, "binary-frame answers diverged");
    println!(
        "binary frames (--frames binary): {} ok / {} requests, {:.0} qps, p99 {} µs",
        bf.ok, bf.requests, bf.qps, bf.p99_us
    );

    // Third pass: the many-connection fan-in scenario. 1000 sockets held
    // open simultaneously against the default-size worker pool, one
    // in-flight request per socket, every answer verified — the C10k
    // claim measured rather than asserted (`connections_open` is sampled
    // from the server's stats while all sockets are open). A stats
    // snapshot taken just before lets the syscall-budget ratios be
    // computed over exactly the fan-in window.
    let pre_fan = loadgen::fetch_stats(&addr).expect("pre-fan-in stats snapshot");
    let fan_cfg = LoadgenConfig {
        requests: 4_000,
        concurrency: 4,
        connections: 1_000,
        session_prefix: "fanin".to_owned(),
        max_probes: None,
        ..cfg.clone()
    };
    let fan = loadgen::run(&addr, &fan_cfg).expect("fan-in loadgen run");
    let f = &fan.report;
    assert_eq!(f.errors, 0, "protocol errors during fan-in serve report");
    assert_eq!(f.mismatches, 0, "fan-in answers diverged");
    let connections_open_at_peak = fan
        .server_stats
        .as_ref()
        .and_then(|s| s.get("stats"))
        .and_then(|g| g.get("connections_open"))
        .and_then(serde::Json::as_u64)
        .unwrap_or(0);
    assert!(
        connections_open_at_peak >= fan_cfg.connections as u64,
        "held {connections_open_at_peak} connections, wanted ≥ {}",
        fan_cfg.connections
    );
    println!(
        "fan-in loadgen ({} connections): {} ok, {:.0} qps, p99 {} µs, {} open at stats time",
        f.connections, f.ok, f.qps, f.p99_us, connections_open_at_peak
    );

    // The syscall budget over the fan-in window: counter deltas between
    // the pre-pass snapshot and the mid-run capture. Batched completion
    // drains plus coalesced vectored flushes must keep the hot path under
    // 1.5 write syscalls per response (1.0 = every response shared or
    // owned exactly one writev).
    let counter = |stats: &serde::Json, key: &str| {
        stats
            .get("stats")
            .and_then(|g| g.get(key))
            .and_then(serde::Json::as_u64)
            .unwrap_or(0)
    };
    let fan_stats = fan.server_stats.as_ref().expect("mid-run fan-in stats");
    let delta = |key: &str| counter(fan_stats, key).saturating_sub(counter(&pre_fan, key)) as f64;
    let syscalls_per_response = delta("write_syscalls") / delta("responses").max(1.0);
    let completions_per_wake = delta("completions_delivered") / delta("reactor_wakeups").max(1.0);
    assert!(
        syscalls_per_response < 1.5,
        "fan-in hot path spent {syscalls_per_response:.3} write syscalls per response (want < 1.5)"
    );
    println!(
        "syscall budget (fan-in window): {syscalls_per_response:.3} write syscalls/response, \
         {completions_per_wake:.2} completions/wake"
    );

    // Fourth pass pair: fixed versus adaptive budgets on the heavy-tailed
    // kinds. A hand-picked budget equal to the *cold median* probe cost
    // exhausts roughly half of all-distinct cold traffic by construction;
    // a server fitting each session's budget to its observed p99 should
    // claw almost all of that back — at zero verified-answer mismatches.
    let tail_kinds = vec![
        AlgorithmKind::Spanner(SpannerKind::K2),
        AlgorithmKind::Classic(ClassicKind::Coloring),
    ];

    // The cold median, measured exactly the way the daemon executes: the
    // session's derived seeds, a fresh instance per query (no cross-query
    // memos), an unlimited probe context.
    let tail_oracle = ImplicitFamily::Gnp.build(cfg.n, lca_serve::input_seed(cfg.seed));
    let mut tail_probes: Vec<u64> = Vec::new();
    for &kind in &tail_kinds {
        let config = LcaConfig::new(kind, lca_serve::algo_seed(cfg.seed));
        let queries = kind.queries_from(&tail_oracle, QuerySource::sample(128, Seed::new(0xC01D)));
        for &q in &queries {
            let cold = config.build(&tail_oracle);
            let ctx = QueryCtx::unlimited();
            cold.query_ctx(q, &ctx).expect("cold tail query");
            tail_probes.push(ctx.spent());
        }
    }
    tail_probes.sort_unstable();
    let tail_budget_probes = pct(&tail_probes, 0.5).max(1);

    let tail_requests = 1_200;
    let fixed_cfg = LoadgenConfig {
        requests: tail_requests,
        kinds: tail_kinds.clone(),
        max_probes: Some(tail_budget_probes),
        session_prefix: "fixedtail".to_owned(),
        query_pool: tail_requests,
        connections: 0,
        ..cfg.clone()
    };
    let fixed = loadgen::run(&addr, &fixed_cfg).expect("fixed-tail loadgen run");
    let fx = &fixed.report;
    assert_eq!(fx.errors, 0, "protocol errors during fixed-tail report");
    assert_eq!(fx.mismatches, 0, "fixed-tail answers diverged");
    let fixed_exhaustion_rate = fx.budget_exhausted as f64 / fx.requests.max(1) as f64;
    println!(
        "fixed tail (max_probes={tail_budget_probes}, cold median): {} ok, {} budget-exhausted ({:.1}%)",
        fx.ok,
        fx.budget_exhausted,
        100.0 * fixed_exhaustion_rate
    );

    // The adaptive daemon: same workload, no client budget — the server
    // observes each session's probe histogram and fits max_probes to p99.
    let adaptive_listener = bind("127.0.0.1:0").expect("bind adaptive port");
    let adaptive_addr = adaptive_listener
        .local_addr()
        .expect("local addr")
        .to_string();
    let adaptive_server = Server::new(ServerConfig {
        adaptive_budgets: true,
        ..ServerConfig::default()
    });
    let adaptive_loop = {
        let server = adaptive_server.clone();
        std::thread::spawn(move || {
            server
                .serve(adaptive_listener)
                .expect("adaptive serve loop")
        })
    };
    let adaptive_cfg = LoadgenConfig {
        max_probes: None,
        session_prefix: "adaptivetail".to_owned(),
        ..fixed_cfg.clone()
    };
    let adaptive = loadgen::run(&adaptive_addr, &adaptive_cfg).expect("adaptive-tail loadgen run");
    let ad = &adaptive.report;
    assert_eq!(ad.errors, 0, "protocol errors during adaptive-tail report");
    assert_eq!(ad.mismatches, 0, "adaptive-tail answers diverged");
    let adaptive_exhaustion_rate = ad.budget_exhausted as f64 / ad.requests.max(1) as f64;
    assert!(
        adaptive_exhaustion_rate < fixed_exhaustion_rate,
        "adaptive budgets must beat the fixed cold-median budget: \
         adaptive {adaptive_exhaustion_rate:.3} vs fixed {fixed_exhaustion_rate:.3}"
    );
    println!(
        "adaptive tail (--adaptive-budgets, p99 fit): {} ok, {} budget-exhausted ({:.1}%) — vs {:.1}% fixed",
        ad.ok,
        ad.budget_exhausted,
        100.0 * adaptive_exhaustion_rate,
        100.0 * fixed_exhaustion_rate
    );
    loadgen::send_shutdown(&adaptive_addr).expect("adaptive shutdown");
    adaptive_loop.join().expect("adaptive drains");

    #[derive(serde::Serialize)]
    struct ServeTrajectory {
        mode: String,
        n: usize,
        unbudgeted: lca_serve::loadgen::LoadReport,
        budgeted: lca_serve::loadgen::LoadReport,
        budget_probes: u64,
        exhaustion_rate: f64,
        binary_frames: lca_serve::loadgen::LoadReport,
        fan_in: lca_serve::loadgen::LoadReport,
        fan_in_connections: usize,
        connections_open_at_peak: u64,
        syscalls_per_response: f64,
        completions_per_wake: f64,
        fixed_tail: lca_serve::loadgen::LoadReport,
        adaptive_tail: lca_serve::loadgen::LoadReport,
        tail_budget_probes: u64,
        fixed_exhaustion_rate: f64,
        adaptive_exhaustion_rate: f64,
    }
    write_json(
        "BENCH_engine_serve",
        &ServeTrajectory {
            mode: "serve".to_owned(),
            n: cfg.n,
            unbudgeted: r.clone(),
            budgeted: b.clone(),
            budget_probes: 48,
            exhaustion_rate: b.budget_exhausted as f64 / b.requests.max(1) as f64,
            binary_frames: bf.clone(),
            fan_in: f.clone(),
            fan_in_connections: fan_cfg.connections,
            connections_open_at_peak,
            syscalls_per_response,
            completions_per_wake,
            fixed_tail: fx.clone(),
            adaptive_tail: ad.clone(),
            tail_budget_probes,
            fixed_exhaustion_rate,
            adaptive_exhaustion_rate,
        },
    );

    loadgen::send_shutdown(&addr).expect("shutdown");
    serve_loop.join().expect("drain");

    let stats = run.server_stats.expect("server stats");
    let sessions = stats.get("sessions").expect("sessions object");
    let serde::Json::Obj(entries) = sessions else {
        panic!("sessions is not an object")
    };
    let mut table = Table::new([
        "session",
        "kind",
        "queries",
        "qps",
        "p50 µs",
        "p99 µs",
        "probes p50",
        "probes p99",
        "cache hit rate",
        "errors",
    ]);
    let field = |s: &serde::Json, k: &str| s.get(k).and_then(serde::Json::as_u64).unwrap_or(0);
    for (name, s) in entries {
        let row = ServeRow {
            session: name.clone(),
            kind: s
                .get("kind")
                .and_then(serde::Json::as_str)
                .unwrap_or("?")
                .to_owned(),
            queries: field(s, "queries"),
            qps: s.get("qps").and_then(serde::Json::as_f64).unwrap_or(0.0),
            latency_p50_us: field(s, "latency_p50_us"),
            latency_p99_us: field(s, "latency_p99_us"),
            probes_p50: field(s, "probes_p50"),
            probes_p99: field(s, "probes_p99"),
            cache_hit_rate: s
                .get("cache_hit_rate")
                .and_then(serde::Json::as_f64)
                .unwrap_or(0.0),
            errors: field(s, "errors"),
        };
        table.row([
            row.session.clone(),
            row.kind.clone(),
            row.queries.to_string(),
            format!("{:.0}", row.qps),
            row.latency_p50_us.to_string(),
            row.latency_p99_us.to_string(),
            row.probes_p50.to_string(),
            row.probes_p99.to_string(),
            format!("{:.2}", row.cache_hit_rate),
            row.errors.to_string(),
        ]);
        record_json("engine_report_serve", &row);
    }
    table.print("lca-serve end-to-end — per-session stats after the verified load run");
    println!("\n(every answer was checked against a direct LcaBuilder query; latencies are");
    println!("service time inside the daemon, the loadgen line above includes the wire.)");
}

/// The `--fleet` report: two backends + the HTTP gateway, in-process.
/// The same 4k-request verified mixed load runs twice — direct raw-TCP
/// against one backend, then through the gateway — yielding the HTTP
/// tier's qps/latency, its overhead vs the direct path, and the
/// per-shard routing histogram from the fleet stats rollup.
fn fleet_report() {
    use lca_fleet::{Fleet, Gateway, GatewayConfig};
    use lca_serve::loadgen::{self, LoadgenConfig};
    use lca_serve::server::{bind, Server, ServerConfig};

    lca_serve::raise_fd_limit(8192).expect("raise fd limit");

    // Two backends, one gateway, all in-process on ephemeral ports.
    let mut backends = Vec::new();
    for id in ["b0", "b1"] {
        let listener = bind("127.0.0.1:0").expect("bind backend");
        let addr = listener.local_addr().expect("local addr").to_string();
        let server = Server::new(ServerConfig {
            backend_id: id.to_owned(),
            ..ServerConfig::default()
        });
        let handle = {
            let server = server.clone();
            std::thread::spawn(move || server.serve(listener).expect("backend serve loop"))
        };
        backends.push((addr, handle));
    }
    let backend_addrs: Vec<String> = backends.iter().map(|(a, _)| a.clone()).collect();
    let gw_listener = bind("127.0.0.1:0").expect("bind gateway");
    let gw_addr = gw_listener.local_addr().expect("local addr").to_string();
    let gateway = Gateway::new(Fleet::new(backend_addrs.clone()), GatewayConfig::default());
    let gw_loop = {
        let gateway = gateway.clone();
        std::thread::spawn(move || gateway.serve(gw_listener).expect("gateway serve loop"))
    };

    let cfg = LoadgenConfig {
        requests: 4_000,
        concurrency: 4,
        kinds: vec![
            AlgorithmKind::Classic(ClassicKind::Mis),
            AlgorithmKind::Classic(ClassicKind::Matching),
            AlgorithmKind::Spanner(SpannerKind::Three),
            AlgorithmKind::Spanner(SpannerKind::Five),
        ],
        family: ImplicitFamily::Gnp,
        n: 1_000_000,
        seed: 0x11CC,
        verify: true,
        ..LoadgenConfig::default()
    };
    println!(
        "fleet report: 2 x lca-serve + lca-gateway @ {gw_addr}, {} requests x {} connections, implicit G(n = {}, c/n), verify on",
        cfg.requests, cfg.concurrency, cfg.n
    );

    // Baseline: the same load straight at one backend over raw TCP.
    let direct_cfg = LoadgenConfig {
        session_prefix: "direct".to_owned(),
        ..cfg.clone()
    };
    let direct = loadgen::run(&backends[0].0, &direct_cfg).expect("direct loadgen run");
    let d = &direct.report;
    assert_eq!(d.errors, 0, "protocol errors during direct pass");
    assert_eq!(d.mismatches, 0, "direct answers diverged");
    println!(
        "direct TCP:   {} ok / {} requests, {:.0} qps, p50 {} µs, p99 {} µs",
        d.ok, d.requests, d.qps, d.p50_us, d.p99_us
    );

    // The fleet pass: identical load through the HTTP gateway, every
    // answer still verified against a direct LcaBuilder query (the
    // gateway forwards backend response lines verbatim, so the loadgen's
    // verification machinery needs no changes).
    // Prefix chosen so the four session names split 2/2 across the two
    // shards under `shard_for_str` — the histogram below then witnesses
    // genuinely multi-backend routing, not a lucky single-shard run.
    let fleet_cfg = LoadgenConfig {
        http: true,
        session_prefix: "fleets".to_owned(),
        ..cfg.clone()
    };
    let fleet = loadgen::run(&gw_addr, &fleet_cfg).expect("fleet loadgen run");
    let f = &fleet.report;
    assert_eq!(f.errors, 0, "protocol errors during fleet pass");
    assert_eq!(f.mismatches, 0, "fleet answers diverged");
    println!(
        "via gateway:  {} ok / {} requests, {:.0} qps, p50 {} µs, p99 {} µs, {} overloaded",
        f.ok, f.requests, f.qps, f.p50_us, f.p99_us, f.overloaded
    );

    // Per-shard routing histogram from the fleet rollup: every query the
    // gateway saw must be routed somewhere, and with 4+ sessions both
    // shards must see traffic.
    let stats = loadgen::fetch_stats_http(&gw_addr).expect("fleet stats");
    let rollup = stats.get("fleet").expect("fleet rollup");
    let routed: Vec<u64> = rollup
        .get("routed")
        .and_then(serde::Json::as_array)
        .expect("routed histogram")
        .iter()
        .map(|x| x.as_u64().unwrap())
        .collect();
    let routed_total: u64 = routed.iter().sum();
    assert!(
        routed_total >= cfg.requests as u64,
        "every gateway query is routed: {routed:?}"
    );
    assert!(
        routed.iter().all(|&r| r > 0),
        "both shards see traffic: {routed:?}"
    );
    assert_eq!(
        rollup.get("backends_up").and_then(serde::Json::as_u64),
        Some(2),
        "both backends report stats"
    );
    let overhead_p50 = f.p50_us as i64 - d.p50_us as i64;
    let overhead_p99 = f.p99_us as i64 - d.p99_us as i64;
    println!(
        "routing: {routed:?} ({routed_total} routed), gateway overhead p50 {overhead_p50:+} µs, p99 {overhead_p99:+} µs, qps ratio {:.2}",
        f.qps / d.qps.max(1.0)
    );

    #[derive(serde::Serialize)]
    struct FleetTrajectory {
        mode: String,
        n: usize,
        backends: usize,
        direct: lca_serve::loadgen::LoadReport,
        gateway: lca_serve::loadgen::LoadReport,
        routed: Vec<u64>,
        gateway_overhead_p50_us: i64,
        gateway_overhead_p99_us: i64,
        qps_ratio: f64,
    }
    write_json(
        "BENCH_engine_fleet",
        &FleetTrajectory {
            mode: "fleet".to_owned(),
            n: cfg.n,
            backends: backends.len(),
            direct: d.clone(),
            gateway: f.clone(),
            routed,
            gateway_overhead_p50_us: overhead_p50,
            gateway_overhead_p99_us: overhead_p99,
            qps_ratio: f.qps / d.qps.max(1.0),
        },
    );

    loadgen::send_shutdown_http(&gw_addr).expect("gateway shutdown");
    gw_loop.join().expect("gateway drains");
    for (addr, handle) in backends {
        loadgen::send_shutdown(&addr).expect("backend shutdown");
        handle.join().expect("backend drains");
    }
    println!("\n(the gateway pass went client → HTTP gateway → routed backend and back;");
    println!("the direct pass skipped the middle hop — the deltas above are the HTTP tier.)");
}

fn main() {
    if std::env::args().any(|a| a == "--implicit") {
        implicit_report();
        return;
    }
    if std::env::args().any(|a| a == "--serve") {
        serve_report();
        return;
    }
    if std::env::args().any(|a| a == "--fleet") {
        fleet_report();
        return;
    }
    let n = 600;
    let g = RegularBuilder::new(n, 8)
        .seed(Seed::new(0x5E4))
        .build()
        .expect("regular graph");
    let seed = Seed::new(0x11CA);
    let engine = QueryEngine::with_threads(4);
    println!(
        "serving report: n = {n}, m = {}, engine threads = {}",
        g.edge_count(),
        engine.threads()
    );

    let mut table = Table::new([
        "algorithm",
        "queries",
        "yes",
        "batch ms",
        "probes mean",
        "probes max",
        "distinct mean",
        "distinct max",
        "shards",
        "probe bound",
    ]);
    let mut trajectory = Vec::new();
    for kind in AlgorithmKind::all() {
        let config = LcaConfig::new(kind, seed);
        let queries = kind.queries(&g);
        trajectory.push(trajectory_row(&config, &&g, &queries, &engine));

        // Batched parallel serving through one shared instance.
        let algo = config.build(&g);
        let t = Instant::now();
        let answers = engine.query_batch(&algo, &queries);
        let batch_ms = t.elapsed().as_secs_f64() * 1e3;
        let yes = answers.iter().filter(|a| **a == Ok(true)).count();

        // Probe accounting: per-shard parallel measurement plus the
        // distinct-probe measure (per-query memo) for the spanners.
        let (probe_mean, probe_max, distinct_mean, distinct_max, shards) =
            if config.build_spanner(&g).is_some() {
                let run = engine
                    .measure_queries(&g, &g, |c| config.build_spanner(c).expect("spanner"))
                    .expect("engine measurement");
                let memo = MemoOracle::new(&g);
                let counter = CountingOracle::new(&memo);
                let lca = config.build_spanner(&counter).expect("spanner");
                let d = measure_queries_distinct(&g, &counter, &lca).expect("distinct measurement");
                (
                    run.per_query_mean,
                    run.per_query_max,
                    d.distinct_mean,
                    d.distinct_max as u64,
                    run.per_shard.len(),
                )
            } else {
                (0.0, 0, 0.0, 0, 0)
            };

        let row = Row {
            algorithm: algo.name().to_owned(),
            query_kind: kind.query_kind().to_string(),
            probe_bound: algo.probe_bound().to_owned(),
            queries: queries.len(),
            yes_answers: yes,
            batch_ms,
            probe_mean,
            probe_max,
            distinct_mean,
            distinct_max,
            shards,
        };
        table.row([
            row.algorithm.clone(),
            row.queries.to_string(),
            row.yes_answers.to_string(),
            format!("{:.1}", row.batch_ms),
            format!("{:.1}", row.probe_mean),
            row.probe_max.to_string(),
            format!("{:.1}", row.distinct_mean),
            row.distinct_max.to_string(),
            row.shards.to_string(),
            row.probe_bound.clone(),
        ]);
        record_json("engine_report", &row);
    }
    write_json(
        "BENCH_engine",
        &Trajectory {
            mode: "materialized".to_owned(),
            n,
            rows: trajectory,
        },
    );
    table.print("Unified API — registry construction, engine serving, probe measures");
    println!("\n(distinct = per-query memoized probes, the Definition 1.4 local-memory measure;");
    println!("classic vertex LCAs report batch timing only — their probe costs are exponential-in-Δ envelopes.)");
}
