//! Shared measurement harness for the table/figure binaries and benches.
//!
//! Every binary in `src/bin/` regenerates one of the paper's evaluation
//! artifacts (see `DESIGN.md` §3 and `EXPERIMENTS.md`): it prints an aligned
//! table to stdout and mirrors the rows as JSON lines under
//! `bench-results/` so EXPERIMENTS.md numbers stay regenerable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Reporting is this crate's purpose: every binary renders its table to
// stdout, so the workspace-wide print ban does not apply here.
#![allow(clippy::print_stdout)]

use std::io::Write as _;

use lca_core::EdgeSubgraphLca;
use lca_graph::{Graph, Subgraph, VertexId};
use lca_probe::{CountingOracle, Oracle};
use lca_rand::{Seed, SplitMix64};

/// Per-query probe statistics over a sample of edge queries.
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub struct ProbeStats {
    /// Maximum probes over the sampled queries (the paper's probe
    /// complexity measure).
    pub max: u64,
    /// Mean probes per query.
    pub mean: f64,
    /// Number of sampled queries.
    pub samples: usize,
}

/// Samples `count` distinct edges of `graph` uniformly.
pub fn sample_edges(graph: &Graph, count: usize, seed: Seed) -> Vec<(VertexId, VertexId)> {
    let m = graph.edge_count();
    let mut rng = SplitMix64::new(seed.value());
    if m == 0 {
        return Vec::new();
    }
    if count >= m {
        return graph.edges().collect();
    }
    let mut picked = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let i = rng.next_below(m as u64) as usize;
        if picked.insert(i) {
            out.push(graph.edge_endpoints(i));
        }
    }
    out
}

/// Measures per-query probe costs of `lca` (whose oracle must be `counter`)
/// over the given sample.
pub fn probe_stats<O: Oracle, L: EdgeSubgraphLca>(
    counter: &CountingOracle<O>,
    lca: &L,
    sample: &[(VertexId, VertexId)],
) -> ProbeStats {
    let mut max = 0u64;
    let mut sum = 0u64;
    for &(u, v) in sample {
        let scope = counter.scoped();
        lca.contains(u, v).expect("sampled pairs are edges");
        let c = scope.cost().total();
        max = max.max(c);
        sum += c;
    }
    ProbeStats {
        max,
        mean: if sample.is_empty() {
            0.0
        } else {
            sum as f64 / sample.len() as f64
        },
        samples: sample.len(),
    }
}

/// Sampled stretch check: for up to `samples` host edges *not* kept by
/// `subgraph`, measure the detour; returns the maximum (`None` ⇒ some
/// sampled edge had no detour within `cap`).
pub fn sampled_stretch(
    graph: &Graph,
    subgraph: &Subgraph,
    samples: usize,
    cap: u32,
    seed: Seed,
) -> Option<u32> {
    let omitted: Vec<(VertexId, VertexId)> = graph
        .edges()
        .filter(|&(u, v)| !subgraph.has_edge(u, v))
        .collect();
    if omitted.is_empty() {
        return Some(1);
    }
    let mut rng = SplitMix64::new(seed.value());
    let mut worst = 1u32;
    let take = samples.min(omitted.len());
    for _ in 0..take {
        let (u, v) = omitted[rng.next_below(omitted.len() as u64) as usize];
        match subgraph.distance_within(u, v, cap) {
            Some(d) => worst = worst.max(d),
            None => return None,
        }
    }
    Some(worst)
}

/// Least-squares slope of `ln y` against `ln x` — the measured exponent of
/// a power-law scaling series.
pub fn loglog_slope(points: &[(f64, f64)]) -> f64 {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(x, y)| x > 0.0 && y > 0.0)
        .map(|&(x, y)| (x.ln(), y.ln()))
        .collect();
    let n = pts.len() as f64;
    if pts.len() < 2 {
        return f64::NAN;
    }
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

/// Peak resident set size of this process (Linux `VmHWM`) in bytes, or
/// `None` where the platform does not expose it. The implicit-oracle
/// reports print it as the "did we materialize anything?" witness.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// A simple aligned-column table printer.
#[derive(Debug)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        self.rows.push(cells.into_iter().map(Into::into).collect());
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len().max(1);
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                if i < cols {
                    width[i] = width[i].max(c.len());
                }
            }
        }
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = width.get(i).copied().unwrap_or(8)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header, &width));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &width));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout with a title.
    pub fn print(&self, title: &str) {
        println!("\n== {title} ==");
        print!("{}", self.render());
    }
}

/// Overwrites `bench-results/<name>.json` with one JSON document (best
/// effort) — the machine-readable snapshot a perf trajectory diffs across
/// PRs, as opposed to the append-only [`record_json`] run logs.
pub fn write_json<T: serde::Serialize>(name: &str, value: &T) {
    let dir = std::path::Path::new("bench-results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    if let Ok(line) = serde_json::to_string(value) {
        let _ = std::fs::write(dir.join(format!("{name}.json")), format!("{line}\n"));
    }
}

/// Appends a JSON line to `bench-results/<name>.jsonl` (best effort; bench
/// output must not fail the run).
pub fn record_json<T: serde::Serialize>(name: &str, value: &T) {
    let dir = std::path::Path::new("bench-results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.jsonl"));
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        if let Ok(line) = serde_json::to_string(value) {
            let _ = writeln!(f, "{line}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lca_core::{ThreeSpanner, ThreeSpannerParams};
    use lca_graph::gen::GnpBuilder;

    #[test]
    fn sample_edges_within_bounds() {
        let g = GnpBuilder::new(40, 0.2).seed(Seed::new(1)).build();
        let s = sample_edges(&g, 10, Seed::new(2));
        assert_eq!(s.len(), 10);
        for (u, v) in s {
            assert!(g.has_edge(u, v));
        }
        let all = sample_edges(&g, usize::MAX, Seed::new(2));
        assert_eq!(all.len(), g.edge_count());
    }

    #[test]
    fn probe_stats_are_positive() {
        let g = GnpBuilder::new(60, 0.3).seed(Seed::new(3)).build();
        let counter = CountingOracle::new(&g);
        let lca = ThreeSpanner::new(&counter, ThreeSpannerParams::for_n(60), Seed::new(4));
        let sample = sample_edges(&g, 20, Seed::new(5));
        let st = probe_stats(&counter, &lca, &sample);
        assert!(st.max >= 1);
        assert!(st.mean >= 1.0);
        assert_eq!(st.samples, 20);
    }

    #[test]
    fn loglog_slope_recovers_exponents() {
        let pts: Vec<(f64, f64)> = (1..=6)
            .map(|i| {
                let x = (1u64 << (i + 4)) as f64;
                (x, 3.0 * x.powf(0.75))
            })
            .collect();
        assert!((loglog_slope(&pts) - 0.75).abs() < 1e-9);
        assert!(loglog_slope(&[]).is_nan());
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["n", "value"]);
        t.row(["100", "1.5"]);
        t.row(["100000", "2.25"]);
        let s = t.render();
        assert!(s.contains("100000"));
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    fn sampled_stretch_on_full_subgraph_is_one() {
        let g = GnpBuilder::new(30, 0.3).seed(Seed::new(6)).build();
        let all = Subgraph::from_edges(&g, g.edges());
        assert_eq!(sampled_stretch(&g, &all, 50, 5, Seed::new(7)), Some(1));
    }
}
