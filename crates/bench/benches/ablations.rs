//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * **A1/A2 (Ideas I & II)** — block partitioning and multiple-center
//!   membership testing: disable the neighborhood partition (block = n) and
//!   shrink the center prefix, and watch the per-query cost move.
//! * **A3 (Idea V)** — the q-lowest-ranks connection rule: q = 1 (the
//!   Lenzen–Levi rule) vs the paper's q = Θ(n^{1/k} log n).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lca_bench::sample_edges;
use lca_core::{EdgeSubgraphLca, K2Params, K2Spanner, ThreeSpanner, ThreeSpannerParams};
use lca_graph::gen::{GnpBuilder, RegularBuilder};
use lca_rand::Seed;

fn bench_block_partitioning(c: &mut Criterion) {
    let n = 1024usize;
    let g = GnpBuilder::new(n, 0.25).seed(Seed::new(1)).build();
    let sample = sample_edges(&g, 48, Seed::new(2));
    let mut group = c.benchmark_group("ablation_block_partition");
    group.sample_size(20);
    for (name, params) in [
        ("paper_blocks", ThreeSpannerParams::for_n(n)),
        ("no_partition", {
            // Idea II disabled: one block spanning the whole list — the
            // scan may walk all of Γ(v) per query.
            let mut p = ThreeSpannerParams::for_n(n);
            p.super_block = n;
            p
        }),
        ("single_center_prefix", {
            // Idea I weakened: a tiny center prefix forces the fallback /
            // more scans.
            let mut p = ThreeSpannerParams::for_n(n);
            p.center_block = 4;
            p
        }),
    ] {
        let lca = ThreeSpanner::new(&g, params, Seed::new(3));
        let mut i = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            b.iter(|| {
                let (u, v) = sample[i % sample.len()];
                i += 1;
                std::hint::black_box(lca.contains(u, v).unwrap())
            })
        });
    }
    group.finish();
}

fn bench_q_rule(c: &mut Criterion) {
    let n = 800usize;
    let g = RegularBuilder::new(n, 4)
        .seed(Seed::new(4))
        .build()
        .unwrap();
    let sample = sample_edges(&g, 32, Seed::new(5));
    let mut group = c.benchmark_group("ablation_q_rule");
    group.sample_size(15);
    for &q in &[1usize, 8, 64] {
        let mut params = K2Params::for_n(n, 2);
        params.q = q;
        let lca = K2Spanner::new(&g, params, Seed::new(6));
        let mut i = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter(q), &q, |b, _| {
            b.iter(|| {
                let (u, v) = sample[i % sample.len()];
                i += 1;
                std::hint::black_box(lca.contains(u, v).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_block_partitioning, bench_q_rule);
criterion_main!(benches);
