//! Criterion micro-benchmarks: per-query latency of each spanner LCA
//! (the wall-clock companion to the probe-count tables).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lca_bench::sample_edges;
use lca_core::{
    EdgeSubgraphLca, FiveSpanner, FiveSpannerParams, K2Params, K2Spanner, ThreeSpanner,
    ThreeSpannerParams,
};
use lca_graph::gen::{GnpBuilder, RegularBuilder};
use lca_rand::Seed;

fn bench_three(c: &mut Criterion) {
    let mut group = c.benchmark_group("three_spanner_query");
    for &n in &[512usize, 1024, 2048] {
        let g = GnpBuilder::new(n, 0.25).seed(Seed::new(n as u64)).build();
        let lca = ThreeSpanner::new(&g, ThreeSpannerParams::for_n(n), Seed::new(1));
        let sample = sample_edges(&g, 64, Seed::new(2));
        let mut i = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let (u, v) = sample[i % sample.len()];
                i += 1;
                std::hint::black_box(lca.contains(u, v).unwrap())
            })
        });
    }
    group.finish();
}

fn bench_five(c: &mut Criterion) {
    let mut group = c.benchmark_group("five_spanner_query");
    group.sample_size(20);
    for &n in &[512usize, 1024] {
        let g = GnpBuilder::new(n, 0.25).seed(Seed::new(n as u64)).build();
        let lca = FiveSpanner::new(&g, FiveSpannerParams::for_n(n), Seed::new(1));
        let sample = sample_edges(&g, 32, Seed::new(2));
        let mut i = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let (u, v) = sample[i % sample.len()];
                i += 1;
                std::hint::black_box(lca.contains(u, v).unwrap())
            })
        });
    }
    group.finish();
}

fn bench_k2(c: &mut Criterion) {
    let mut group = c.benchmark_group("k2_spanner_query");
    group.sample_size(20);
    for &(n, k) in &[(800usize, 2usize), (800, 3)] {
        let g = RegularBuilder::new(n, 4)
            .seed(Seed::new(n as u64))
            .build()
            .unwrap();
        let lca = K2Spanner::new(&g, K2Params::for_n(n, k), Seed::new(1));
        let sample = sample_edges(&g, 32, Seed::new(2));
        let mut i = 0usize;
        group.bench_with_input(BenchmarkId::new(format!("k{k}"), n), &n, |b, _| {
            b.iter(|| {
                let (u, v) = sample[i % sample.len()];
                i += 1;
                std::hint::black_box(lca.contains(u, v).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_three, bench_five, bench_k2);
criterion_main!(benches);
