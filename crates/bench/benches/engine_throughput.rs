//! QueryEngine throughput: batched parallel materialization vs the serial
//! `measure_queries` harness, on graphs big enough (n ≥ 10 000) that probe
//! work dominates thread setup.
//!
//! Run: `cargo bench -p lca-bench --bench engine_throughput`
//!
//! Plain `std::time::Instant` harness (`harness = false`): the comparison
//! is wall-clock over identical full-edge query sets, and each parallel
//! configuration re-verifies that it kept exactly the serial spanner.

// Progress/report lines on stdout are this target's output channel.
#![allow(clippy::print_stdout)]
use std::time::Instant;

use lca::prelude::*;
use lca_core::{measure_queries, QueryEngine};

fn main() {
    let n = 10_000;
    let seed = Seed::new(0xBEEF);
    // Two regimes on bounded-degree graphs: the 3-spanner's low-class
    // queries cost O(1) probes (engine-overhead floor — thread setup must
    // not swamp cheap queries), while the O(k²) construction's Õ(Δ⁴n^{2/3})
    // queries are probe-dominated (where sharding pays off).
    let workloads = [(SpannerKind::Three, 12usize), (SpannerKind::K2, 12usize)];
    for (kind, degree) in workloads {
        let g = RegularBuilder::new(n, degree)
            .seed(Seed::new(0xE16))
            .build()
            .expect("regular graph");
        println!(
            "graph: n = {n}, d = {degree}, m = {} (full edge query set per run)",
            g.edge_count()
        );
        let config = LcaConfig::new(AlgorithmKind::Spanner(kind), seed);

        // Serial baseline: the classic harness, one instance, one thread.
        let counter = CountingOracle::new(&g);
        let serial_lca = config.build_spanner(&counter).expect("spanner kind");
        let t = Instant::now();
        let serial = measure_queries(&g, &counter, &serial_lca).expect("serial run");
        let serial_time = t.elapsed();
        println!(
            "{:<16} serial measure_queries: {:>8.1} ms  ({} kept, {} probes)",
            serial.algorithm,
            serial_time.as_secs_f64() * 1e3,
            serial.kept.edge_count(),
            serial.total.total()
        );

        // Shared-instance parallel materialization.
        let shared = config.build_spanner(&g).expect("spanner kind");
        for threads in [2usize, 4, 8] {
            let engine = QueryEngine::with_threads(threads);
            let t = Instant::now();
            let sub = engine.materialize(&g, &shared).expect("parallel run");
            let elapsed = t.elapsed();
            assert_eq!(sub.edge_count(), serial.kept.edge_count(), "answer drift");
            println!(
                "{:<16} parallel materialize x{threads}: {:>6.1} ms  (speedup {:.2}x)",
                serial.algorithm,
                elapsed.as_secs_f64() * 1e3,
                serial_time.as_secs_f64() / elapsed.as_secs_f64()
            );
        }

        // Per-shard instances with full probe accounting. Explicit thread
        // count so the sharded path is exercised even on small hosts.
        let engine = QueryEngine::with_threads(4);
        let t = Instant::now();
        let run = engine
            .measure_queries(&g, &g, |c| config.build_spanner(c).expect("spanner kind"))
            .expect("engine run");
        let elapsed = t.elapsed();
        assert_eq!(run.kept.edge_count(), serial.kept.edge_count());
        assert_eq!(run.total, serial.total);
        println!(
            "{:<16} engine measure x{}:   {:>8.1} ms  (speedup {:.2}x, {} shards)\n",
            run.algorithm,
            engine.threads(),
            elapsed.as_secs_f64() * 1e3,
            serial_time.as_secs_f64() / elapsed.as_secs_f64(),
            run.per_shard.len()
        );
    }
}
