//! Criterion micro-benchmarks for the substrates: bounded-independence
//! hashing, the center-BFS variant, generators, and the global baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lca_baseline::{baswana_sen, greedy_spanner};
use lca_core::k2::{center_search, VertexStatus};
use lca_graph::gen::{GnpBuilder, RegularBuilder};
use lca_graph::VertexId;
use lca_rand::{Coin, KWiseHash, RankAssigner, Seed};

fn bench_hashing(c: &mut Criterion) {
    let mut group = c.benchmark_group("rand_substrate");
    for &d in &[2usize, 8, 32] {
        let h = KWiseHash::new(Seed::new(1), d);
        let mut x = 0u64;
        group.bench_with_input(BenchmarkId::new("kwise_hash", d), &d, |b, _| {
            b.iter(|| {
                x = x.wrapping_add(1);
                std::hint::black_box(h.hash(x))
            })
        });
    }
    let coin = Coin::new(Seed::new(2), 0.1, 16);
    let mut x = 0u64;
    group.bench_function("coin_flip_16wise", |b| {
        b.iter(|| {
            x = x.wrapping_add(1);
            std::hint::black_box(coin.flip(x))
        })
    });
    let ranks = RankAssigner::for_spanner(Seed::new(3), 1 << 20, 4);
    let mut y = 0u64;
    group.bench_function("rank_assignment_k4", |b| {
        b.iter(|| {
            y = y.wrapping_add(1);
            std::hint::black_box(ranks.rank(y))
        })
    });
    group.finish();
}

fn bench_center_bfs(c: &mut Criterion) {
    let mut group = c.benchmark_group("center_bfs");
    for &(n, d) in &[(1000usize, 4usize), (4000, 4)] {
        let g = RegularBuilder::new(n, d)
            .seed(Seed::new(n as u64))
            .build()
            .unwrap();
        let coin = Coin::new(Seed::new(5), 0.05, 16);
        let mut i = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                i = (i + 1) % n;
                let st: VertexStatus = center_search(&g, VertexId::new(i), 3, &coin);
                std::hint::black_box(st.is_sparse())
            })
        });
    }
    group.finish();
}

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(10);
    group.bench_function("gnp_n2000_p0.05", |b| {
        let mut s = 0u64;
        b.iter(|| {
            s += 1;
            std::hint::black_box(GnpBuilder::new(2000, 0.05).seed(Seed::new(s)).build())
        })
    });
    group.bench_function("regular_n2000_d4", |b| {
        let mut s = 0u64;
        b.iter(|| {
            s += 1;
            std::hint::black_box(
                RegularBuilder::new(2000, 4)
                    .seed(Seed::new(s))
                    .build()
                    .unwrap(),
            )
        })
    });
    group.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("global_baselines");
    group.sample_size(10);
    let g = GnpBuilder::new(500, 0.2).seed(Seed::new(9)).build();
    group.bench_function("baswana_sen_k2_n500", |b| {
        let mut s = 0u64;
        b.iter(|| {
            s += 1;
            std::hint::black_box(baswana_sen(&g, 2, Seed::new(s)))
        })
    });
    group.bench_function("greedy_t3_n500", |b| {
        b.iter(|| std::hint::black_box(greedy_spanner(&g, 3)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_hashing,
    bench_center_bfs,
    bench_generators,
    bench_baselines
);
criterion_main!(benches);
