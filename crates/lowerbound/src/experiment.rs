//! The indistinguishability experiment.

use lca_graph::VertexId;
use lca_probe::{CountingOracle, Oracle};
use lca_rand::Seed;

use crate::{sample_dminus, sample_dplus};

/// Result of one budget point of the distinguishing experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentOutcome {
    /// Probe budget given to the distinguisher.
    pub budget: u64,
    /// Fraction of D⁺ instances on which the distinguisher accepted
    /// (declared “x–y stay connected without the designated edge”).
    pub plus_accept: f64,
    /// Fraction of D⁻ instances accepted.
    pub minus_accept: f64,
    /// Trials per distribution.
    pub trials: usize,
}

impl ExperimentOutcome {
    /// The distinguishing advantage `|Pr⁺[accept] − Pr⁻[accept]|`.
    pub fn advantage(&self) -> f64 {
        (self.plus_accept - self.minus_accept).abs()
    }
}

/// The natural distinguisher: breadth-first reachability from `x` toward
/// `y`, skipping the designated edge, halting when the probe budget is
/// exhausted. Accepts iff `y` was reached — i.e. iff it *proved* the edge
/// `(x, y)` is redundant.
///
/// On D⁻ it can never accept (there is no alternative path); on D⁺ it
/// accepts once the budget reaches the size of the x-side search frontier —
/// which is Θ(min{n·d, …}) ≫ the o(min{√n, n/d}) regime of Theorem 1.3.
pub fn bounded_reachability_accepts<O: Oracle>(
    oracle: &CountingOracle<O>,
    x: VertexId,
    y: VertexId,
    budget: u64,
) -> bool {
    let scope = oracle.scoped();
    let mut visited = std::collections::HashSet::new();
    let mut queue = std::collections::VecDeque::new();
    visited.insert(x);
    queue.push_back(x);
    while let Some(v) = queue.pop_front() {
        if scope.cost().total() >= budget {
            return false;
        }
        let deg = oracle.degree(v);
        for i in 0..deg {
            if scope.cost().total() >= budget {
                return false;
            }
            let Some(w) = oracle.neighbor(v, i) else {
                break;
            };
            if (v == x && w == y) || (v == y && w == x) {
                continue; // never use the designated edge itself
            }
            if w == y {
                return true;
            }
            if visited.insert(w) {
                queue.push_back(w);
            }
        }
    }
    false
}

/// Runs the experiment: `trials` instances from each distribution, the
/// bounded-reachability distinguisher with the given probe budget.
///
/// # Panics
///
/// Panics if instance sampling fails (invalid `(n, d)` parity; see
/// [`sample_dminus`]).
pub fn distinguishing_experiment(
    n: usize,
    d: usize,
    budget: u64,
    trials: usize,
    seed: Seed,
) -> ExperimentOutcome {
    let mut plus = 0usize;
    let mut minus = 0usize;
    for t in 0..trials {
        let sp = sample_dplus(n, d, seed.derive2(1, t as u64)).expect("valid D+ parameters");
        let counting = CountingOracle::new(&sp.graph);
        if bounded_reachability_accepts(&counting, sp.x, sp.y, budget) {
            plus += 1;
        }
        let sm = sample_dminus(n, d, seed.derive2(2, t as u64)).expect("valid D- parameters");
        let counting = CountingOracle::new(&sm.graph);
        if bounded_reachability_accepts(&counting, sm.x, sm.y, budget) {
            minus += 1;
        }
    }
    ExperimentOutcome {
        budget,
        plus_accept: plus as f64 / trials as f64,
        minus_accept: minus as f64 / trials as f64,
        trials,
    }
}

/// Measures how many edges a spanner LCA keeps on D⁺ instances — the
/// *conclusion* of Theorem 1.3 made observable: because no sublinear-probe
/// algorithm can certify the designated edge redundant, a correct LCA must
/// keep it, and by symmetry it must keep a constant fraction of **all**
/// edges of such sparse regular instances.
///
/// Returns `(kept_fraction, designated_edge_keep_rate)` averaged over
/// `trials` D⁺ instances; `make` builds the LCA under test for each
/// instance graph.
///
/// # Panics
///
/// Panics if instance sampling fails or the LCA errors on an edge query.
pub fn spanner_keep_rate<F>(n: usize, d: usize, trials: usize, seed: Seed, make: F) -> (f64, f64)
where
    F: for<'g> Fn(&'g lca_graph::Graph) -> Box<dyn lca_core::EdgeSubgraphLca + 'g>,
{
    let mut kept = 0usize;
    let mut total = 0usize;
    let mut designated = 0usize;
    for t in 0..trials {
        let inst = sample_dplus(n, d, seed.derive2(3, t as u64)).expect("valid D+ parameters");
        let lca = make(&inst.graph);
        for (u, v) in inst.graph.edges() {
            total += 1;
            if lca.contains(u, v).expect("edge query") {
                kept += 1;
                if (u == inst.x && v == inst.y) || (u == inst.y && v == inst.x) {
                    designated += 1;
                }
            }
        }
    }
    (
        kept as f64 / total.max(1) as f64,
        designated as f64 / trials.max(1) as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dminus_is_never_accepted() {
        // No alternative x–y path exists, so no budget can accept.
        let o = distinguishing_experiment(50, 3, 100_000, 6, Seed::new(1));
        assert_eq!(o.minus_accept, 0.0);
    }

    #[test]
    fn large_budget_accepts_dplus() {
        let o = distinguishing_experiment(50, 3, 100_000, 6, Seed::new(2));
        assert!(
            o.plus_accept >= 0.8,
            "unbounded search should certify redundancy: {o:?}"
        );
        assert!(o.advantage() >= 0.8);
    }

    #[test]
    fn tiny_budget_cannot_distinguish() {
        // Budget far below √n ⇒ advantage collapses.
        let o = distinguishing_experiment(102, 3, 4, 8, Seed::new(3));
        assert!(o.advantage() <= 0.25, "tiny budget should be blind: {o:?}");
    }

    #[test]
    fn advantage_is_monotone_in_budget_overall() {
        let lo = distinguishing_experiment(50, 3, 6, 8, Seed::new(4));
        let hi = distinguishing_experiment(50, 3, 5_000, 8, Seed::new(4));
        assert!(hi.advantage() >= lo.advantage());
    }

    #[test]
    fn probe_answer_histories_respect_the_budget() {
        // Section 6 reasons about probe-answer histories of length L; the
        // tester must actually stop within its budget, and its recorded
        // history must match the counted probes.
        use lca_probe::TracingOracle;
        let inst = sample_dplus(50, 3, Seed::new(5)).unwrap();
        for budget in [1u64, 4, 16, 64] {
            let traced = TracingOracle::new(&inst.graph);
            let counted = CountingOracle::new(&traced);
            let _ = bounded_reachability_accepts(&counted, inst.x, inst.y, budget);
            let history = traced.take_trace();
            assert_eq!(history.len() as u64, counted.counts().total());
            assert!(
                history.len() as u64 <= budget + 1,
                "budget {budget}: history of {} probes",
                history.len()
            );
        }
    }

    #[test]
    fn correct_lcas_keep_omega_m_on_lower_bound_instances() {
        // Theorem 1.3's conclusion: on sparse regular instances a correct
        // spanner LCA keeps (nearly) all edges — here all of them, since
        // d = 3 ≤ √n puts every edge in E_low.
        let (kept, designated) = spanner_keep_rate(50, 3, 4, Seed::new(9), |g| {
            Box::new(lca_core::ThreeSpanner::with_defaults(
                g,
                lca_rand::Seed::new(1),
            ))
        });
        assert_eq!(kept, 1.0);
        assert_eq!(designated, 1.0);
    }

    #[test]
    fn outcome_accessors() {
        let o = ExperimentOutcome {
            budget: 10,
            plus_accept: 0.75,
            minus_accept: 0.25,
            trials: 4,
        };
        assert!((o.advantage() - 0.5).abs() < 1e-12);
    }
}
