//! Sampling the D⁺ and D⁻ instance distributions.

use lca_graph::{Graph, GraphBuilder, GraphError, VertexId};
use lca_rand::{Seed, SplitMix64};

/// A sampled lower-bound instance: a d-regular graph with a designated edge.
#[derive(Debug)]
pub struct LowerBoundInstance {
    /// The instance graph (simple, d-regular).
    pub graph: Graph,
    /// First endpoint of the designated edge.
    pub x: VertexId,
    /// Second endpoint of the designated edge.
    pub y: VertexId,
    /// Whether removing `(x, y)` keeps `x` and `y` connected (D⁺ property;
    /// false for D⁻ by construction).
    pub connected_without_edge: bool,
}

/// Pairs stubs into a matching and repairs self-loops/parallel edges by
/// random pair swaps, never touching pairs flagged as `pinned` (the
/// designated edge). Swaps stay within the provided pair list, so any
/// side-partition invariant is preserved.
fn repair_matching(
    pairs: &mut [(u32, u32)],
    pinned: &[(u32, u32)],
    rng: &mut SplitMix64,
) -> Result<(), GraphError> {
    use std::collections::HashSet;
    for _round in 0..500 {
        let mut seen: HashSet<(u32, u32)> = pinned
            .iter()
            .map(|&(a, b)| if a < b { (a, b) } else { (b, a) })
            .collect();
        let mut bad: Vec<usize> = Vec::new();
        for (i, &(a, b)) in pairs.iter().enumerate() {
            let k = if a < b { (a, b) } else { (b, a) };
            if a == b || !seen.insert(k) {
                bad.push(i);
            }
        }
        if bad.is_empty() {
            return Ok(());
        }
        for i in bad {
            if pairs.len() < 2 {
                break;
            }
            let j = rng.next_below(pairs.len() as u64) as usize;
            if i == j {
                continue;
            }
            let (a, b) = pairs[i];
            let (c, d) = pairs[j];
            pairs[i] = (a, d);
            pairs[j] = (c, b);
        }
    }
    Err(GraphError::Unsatisfiable {
        reason: "matching repair did not converge".into(),
    })
}

fn build(
    n: usize,
    pairs: Vec<(u32, u32)>,
    x: VertexId,
    y: VertexId,
    seed: Seed,
    connected_without_edge: bool,
) -> Result<LowerBoundInstance, GraphError> {
    let mut b = GraphBuilder::new(n).edge(x.index(), y.index());
    for (a, c) in pairs {
        b = b.edge(a as usize, c as usize);
    }
    let graph = b.shuffle_adjacency(seed.derive(0x4C42_4144)).build()?;
    Ok(LowerBoundInstance {
        graph,
        x,
        y,
        connected_without_edge,
    })
}

/// Samples a D⁺ instance: a uniform(-ish, after repair) d-regular simple
/// graph on `n` vertices containing the designated edge `(0, 1)`.
///
/// # Errors
///
/// Fails if `n·d` is odd, `d >= n`, or repair cannot converge.
pub fn sample_dplus(n: usize, d: usize, seed: Seed) -> Result<LowerBoundInstance, GraphError> {
    if d < 1 || d >= n {
        return Err(GraphError::Unsatisfiable {
            reason: format!("need 1 <= d < n, got d={d}, n={n}"),
        });
    }
    if !(n * d).is_multiple_of(2) {
        return Err(GraphError::Unsatisfiable {
            reason: "n·d must be even".into(),
        });
    }
    let x = VertexId::new(0);
    let y = VertexId::new(1);
    let mut rng = SplitMix64::new(seed.derive(0xD9).value());
    // Stubs: d per vertex, minus the designated slot of x and y.
    let mut stubs: Vec<u32> = Vec::with_capacity(n * d - 2);
    for v in 0..n as u32 {
        let count = if v < 2 { d - 1 } else { d };
        for _ in 0..count {
            stubs.push(v);
        }
    }
    for i in (1..stubs.len()).rev() {
        let j = rng.next_below(i as u64 + 1) as usize;
        stubs.swap(i, j);
    }
    let mut pairs: Vec<(u32, u32)> = stubs.chunks_exact(2).map(|c| (c[0], c[1])).collect();
    // Forbid recreating (x, y) as a parallel edge: treat it as pinned.
    repair_matching(&mut pairs, &[(0, 1)], &mut rng)?;
    build(n, pairs, x, y, seed, true)
}

/// Samples a D⁻ instance: the vertex set splits into two halves containing
/// `x = 0` and `y = 1` respectively; each half is internally d-regular
/// (minus the designated stubs) and `(x, y)` is the only crossing edge.
///
/// # Errors
///
/// Fails unless `n ≡ 2 (mod 4)` and `d` is odd (the paper's parity
/// condition, which makes each half's stub count even), or on repair failure.
pub fn sample_dminus(n: usize, d: usize, seed: Seed) -> Result<LowerBoundInstance, GraphError> {
    if d < 1 || d >= n / 2 {
        return Err(GraphError::Unsatisfiable {
            reason: format!("need 1 <= d < n/2, got d={d}, n={n}"),
        });
    }
    if n % 4 != 2 || d % 2 != 1 {
        return Err(GraphError::Unsatisfiable {
            reason: format!("need n ≡ 2 (mod 4) and odd d, got n={n}, d={d}"),
        });
    }
    let x = VertexId::new(0);
    let y = VertexId::new(1);
    let mut rng = SplitMix64::new(seed.derive(0xDA).value());
    let half = n / 2;
    // Random halves: x with a uniform (half-1)-subset of {2..n}, y with the
    // rest.
    let mut rest: Vec<u32> = (2..n as u32).collect();
    for i in (1..rest.len()).rev() {
        let j = rng.next_below(i as u64 + 1) as usize;
        rest.swap(i, j);
    }
    let side_x: Vec<u32> = std::iter::once(0u32)
        .chain(rest[..half - 1].iter().copied())
        .collect();
    let side_y: Vec<u32> = std::iter::once(1u32)
        .chain(rest[half - 1..].iter().copied())
        .collect();

    let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(n * d / 2);
    for (side, designated) in [(&side_x, 0u32), (&side_y, 1u32)] {
        let mut stubs: Vec<u32> = Vec::with_capacity(half * d - 1);
        for &v in side.iter() {
            let count = if v == designated { d - 1 } else { d };
            for _ in 0..count {
                stubs.push(v);
            }
        }
        for i in (1..stubs.len()).rev() {
            let j = rng.next_below(i as u64 + 1) as usize;
            stubs.swap(i, j);
        }
        let mut side_pairs: Vec<(u32, u32)> = stubs.chunks_exact(2).map(|c| (c[0], c[1])).collect();
        repair_matching(&mut side_pairs, &[(0, 1)], &mut rng)?;
        pairs.extend(side_pairs);
    }
    build(n, pairs, x, y, seed, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lca_graph::analysis::{connected_components, UnionFind};

    #[test]
    fn dplus_is_regular_and_contains_designated_edge() {
        let inst = sample_dplus(50, 3, Seed::new(1)).unwrap();
        assert!(inst.graph.vertices().all(|v| inst.graph.degree(v) == 3));
        assert!(inst.graph.has_edge(inst.x, inst.y));
        assert!(inst.connected_without_edge);
    }

    #[test]
    fn dplus_usually_stays_connected_without_the_edge() {
        // d >= 3 random regular graphs are connected (and 3-edge-connected)
        // w.h.p.; check x–y connectivity avoiding the designated edge.
        let mut ok = 0;
        let trials = 10;
        for s in 0..trials {
            let inst = sample_dplus(102, 3, Seed::new(s)).unwrap();
            let mut uf = UnionFind::new(inst.graph.vertex_count());
            for (u, v) in inst.graph.edges() {
                if (u, v) == (inst.x, inst.y) || (v, u) == (inst.x, inst.y) {
                    continue;
                }
                uf.union(u.index(), v.index());
            }
            if uf.same(inst.x.index(), inst.y.index()) {
                ok += 1;
            }
        }
        assert!(ok >= trials - 1, "only {ok}/{trials} stayed connected");
    }

    #[test]
    fn dminus_disconnects_exactly_at_the_designated_edge() {
        for s in 0..5u64 {
            let inst = sample_dminus(50, 3, Seed::new(s)).unwrap();
            assert!(inst.graph.vertices().all(|v| inst.graph.degree(v) == 3));
            assert!(inst.graph.has_edge(inst.x, inst.y));
            assert!(!inst.connected_without_edge);
            // Removing (x, y) splits x from y.
            let mut uf = UnionFind::new(inst.graph.vertex_count());
            for (u, v) in inst.graph.edges() {
                if (u == inst.x && v == inst.y) || (u == inst.y && v == inst.x) {
                    continue;
                }
                uf.union(u.index(), v.index());
            }
            assert!(
                !uf.same(inst.x.index(), inst.y.index()),
                "seed {s}: halves are linked without the designated edge"
            );
        }
    }

    #[test]
    fn dminus_graph_is_connected_with_the_edge() {
        let inst = sample_dminus(102, 3, Seed::new(7)).unwrap();
        let (_, comps) = connected_components(&inst.graph);
        // Each d=3 half is connected w.h.p., and the designated edge joins
        // them.
        assert_eq!(comps, 1);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(sample_dplus(10, 0, Seed::new(0)).is_err());
        assert!(sample_dplus(9, 3, Seed::new(0)).is_err()); // odd n·d
        assert!(sample_dminus(48, 3, Seed::new(0)).is_err()); // n % 4 == 0
        assert!(sample_dminus(50, 4, Seed::new(0)).is_err()); // even d
    }

    #[test]
    fn sampling_is_deterministic() {
        let a = sample_dplus(30, 3, Seed::new(5)).unwrap();
        let b = sample_dplus(30, 3, Seed::new(5)).unwrap();
        assert_eq!(
            a.graph.edges().collect::<Vec<_>>(),
            b.graph.edges().collect::<Vec<_>>()
        );
    }
}
