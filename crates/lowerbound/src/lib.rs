//! The Section 6 lower bound, made executable.
//!
//! Theorem 1.3: any LCA that outputs a spanning subgraph with o(m) edges
//! needs Ω(min{√n, n²/m}) probes. The proof builds two distributions over
//! d-regular instances containing a designated edge `(x, y)`:
//!
//! * **D⁺** — uniform d-regular graphs containing `(x, y)`; removing the
//!   edge w.h.p. leaves `x` and `y` connected.
//! * **D⁻** — the vertex set is split in half around `x` and `y`, each half
//!   independently d-regular, and `(x, y)` is the *only* crossing edge;
//!   removing it disconnects `x` from `y`.
//!
//! A probe-bounded algorithm cannot tell the two apart, yet must keep
//! `(x, y)` on D⁻ — so it must answer YES on Ω(m) edges overall.
//!
//! The paper presents instances as perfect matchings of an `n × d` cell
//! table; sampling a uniform matching is equivalent to the configuration
//! model with uniformly shuffled adjacency slots, which is how
//! [`sample_dplus`]/[`sample_dminus`] realize the distributions (collisions
//! repaired by pair swaps, the paper's simplification step).
//!
//! [`distinguishing_experiment`] measures the empirical advantage of a
//! natural probe-budgeted distinguisher as the budget sweeps across the
//! Ω(min{√n, n/d}) threshold — the data behind the lower-bound “figure”.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod experiment;
mod instance;

pub use experiment::{
    bounded_reachability_accepts, distinguishing_experiment, spanner_keep_rate, ExperimentOutcome,
};
pub use instance::{sample_dminus, sample_dplus, LowerBoundInstance};
