//! Fleet end-to-end tests: real `lca-serve` backends, a real gateway,
//! real HTTP over real sockets.
//!
//! The two properties the fleet design stands on:
//!
//! * **Routing is a pure function of (session name, fleet size)** — a
//!   restarted gateway with the same backend list routes every session to
//!   the same backend, and spec-exchange replication means the fresh
//!   gateway (empty spec cache) still serves spec-less requests because
//!   the backend holds the session.
//! * **Failure is partial and typed** — killing one backend turns its
//!   shard's queries into `503 backend-unavailable` while every other
//!   shard keeps answering.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use lca_fleet::{Fleet, Gateway, GatewayConfig};
use lca_serve::server::{Server, ServerConfig};
use serde::Json;

fn spawn_backend(id: &str) -> (String, std::thread::JoinHandle<()>, Arc<Server>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind backend");
    let addr = listener.local_addr().expect("local addr").to_string();
    let server = Server::new(ServerConfig {
        workers: 2,
        queue_capacity: 64,
        backend_id: id.to_owned(),
        ..ServerConfig::default()
    });
    let handle = {
        let server = server.clone();
        std::thread::spawn(move || {
            server.serve(listener).expect("backend serve loop");
        })
    };
    (addr, handle, server)
}

fn spawn_gateway(backends: Vec<String>) -> (String, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind gateway");
    let addr = listener.local_addr().expect("local addr").to_string();
    let gateway = Gateway::new(
        Fleet::new(backends),
        GatewayConfig {
            workers: 2,
            queue_capacity: 64,
        },
    );
    let handle = std::thread::spawn(move || {
        gateway.serve(listener).expect("gateway serve loop");
    });
    (addr, handle)
}

/// A keep-alive HTTP/1.1 client: one connection, sequential round trips.
struct HttpClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl HttpClient {
    fn connect(addr: &str) -> HttpClient {
        let stream = TcpStream::connect(addr).expect("connect gateway");
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(Duration::from_secs(30))).ok();
        HttpClient {
            writer: stream.try_clone().expect("clone"),
            reader: BufReader::new(stream),
        }
    }

    fn request(&mut self, method: &str, path: &str, body: &str) -> (u16, Json) {
        write!(
            self.writer,
            "{method} {path} HTTP/1.1\r\nHost: lca\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .expect("write request");
        let mut status_line = String::new();
        self.reader
            .read_line(&mut status_line)
            .expect("read status line");
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            self.reader.read_line(&mut header).expect("read header");
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                if name.trim().eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().expect("content-length");
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).expect("read body");
        let body = String::from_utf8(body).expect("UTF-8 body");
        let parsed =
            serde_json::from_str(&body).unwrap_or_else(|e| panic!("bad body {body:?}: {e}"));
        (status, parsed)
    }

    fn query(&mut self, body: &str) -> (u16, Json) {
        self.request("POST", "/v1/query", body)
    }
}

/// The first `s<i>` name that `shard_for_str` sends to `shard` of 2 —
/// computed with the exact function the router uses, so the test pins
/// *which backend* a session must land on, not just consistency.
fn name_for_shard(shard: usize) -> String {
    (0..)
        .map(|i| format!("s{i}"))
        .find(|name| lca_probe::shard_for_str(name, 2) == shard)
        .expect("some name hashes to every shard")
}

fn spec_query(id: u64, session: &str, query: u64) -> String {
    format!(
        "{{\"id\":{id},\"session\":\"{session}\",\"kind\":\"mis\",\"family\":\"gnp\",\
         \"n\":10000,\"seed\":7,\"query\":{query}}}"
    )
}

#[test]
fn routing_is_stable_across_gateway_restarts_and_specs_replicate() {
    let (addr0, h0, _b0) = spawn_backend("b0");
    let (addr1, h1, _b1) = spawn_backend("b1");
    let backends = vec![addr0.clone(), addr1.clone()];
    let names = [name_for_shard(0), name_for_shard(1)];

    // First gateway: create one session per shard, remember its answers.
    let (gw_addr, gw_handle) = spawn_gateway(backends.clone());
    let mut client = HttpClient::connect(&gw_addr);
    let mut first_answers = Vec::new();
    for (shard, name) in names.iter().enumerate() {
        let (status, response) = client.query(&spec_query(1, name, 42));
        assert_eq!(status, 200, "shard {shard}: {response:?}");
        // Spec-less follow-up: the gateway's spec cache injects the spec.
        let (status, response) =
            client.query(&format!("{{\"id\":2,\"session\":\"{name}\",\"query\":42}}"));
        assert_eq!(status, 200, "spec-less on shard {shard}: {response:?}");
        first_answers.push(response.get("answer").and_then(Json::as_bool).unwrap());
    }

    // The merged namespace tags each session with its routed backend.
    let (status, sessions) = client.request("GET", "/v1/sessions", "");
    assert_eq!(status, 200);
    for (shard, name) in names.iter().enumerate() {
        let backend = sessions
            .get("sessions")
            .and_then(|s| s.get(name))
            .and_then(|s| s.get("backend"))
            .and_then(Json::as_u64);
        assert_eq!(backend, Some(shard as u64), "{sessions:?}");
    }

    // The fleet rollup sums per-backend counters and records routing hits.
    let (status, stats) = client.request("GET", "/v1/stats", "");
    assert_eq!(status, 200);
    let fleet = stats.get("fleet").expect("fleet rollup");
    assert_eq!(fleet.get("backends_up").and_then(Json::as_u64), Some(2));
    let routed: Vec<u64> = fleet
        .get("routed")
        .and_then(Json::as_array)
        .expect("routed histogram")
        .iter()
        .map(|x| x.as_u64().unwrap())
        .collect();
    assert_eq!(routed, vec![2, 2], "two queries per shard: {stats:?}");
    let backend_sum: u64 = stats
        .get("backends")
        .and_then(Json::as_array)
        .expect("per-backend array")
        .iter()
        .map(|b| {
            assert_eq!(b.get("ok").and_then(Json::as_bool), Some(true));
            b.get("stats")
                .and_then(|g| g.get("requests"))
                .and_then(Json::as_u64)
                .expect("backend requests")
        })
        .sum();
    assert_eq!(
        fleet.get("requests").and_then(Json::as_u64),
        Some(backend_sum),
        "rollup is the sum of its parts"
    );

    // Drain gateway #1; the backends stay up.
    let (status, bye) = client.request("POST", "/v1/shutdown", "");
    assert_eq!(status, 200);
    assert_eq!(bye.get("draining").and_then(Json::as_bool), Some(true));
    gw_handle.join().expect("gateway drains");

    // Gateway #2 over the same backend list: same routing (pinned via
    // /v1/sessions), and spec-less queries still answer identically even
    // though *this* gateway never saw a spec — the backends hold the
    // sessions, which is exactly what spec-exchange replication promises.
    let (gw_addr, gw_handle) = spawn_gateway(backends);
    let mut client = HttpClient::connect(&gw_addr);
    for (shard, name) in names.iter().enumerate() {
        let (status, response) =
            client.query(&format!("{{\"id\":3,\"session\":\"{name}\",\"query\":42}}"));
        assert_eq!(status, 200, "restart, shard {shard}: {response:?}");
        assert_eq!(
            response.get("answer").and_then(Json::as_bool),
            Some(first_answers[shard]),
            "answers are deterministic across gateway restarts"
        );
    }
    let (_, sessions) = client.request("GET", "/v1/sessions", "");
    for (shard, name) in names.iter().enumerate() {
        let backend = sessions
            .get("sessions")
            .and_then(|s| s.get(name))
            .and_then(|s| s.get("backend"))
            .and_then(Json::as_u64);
        assert_eq!(backend, Some(shard as u64), "restart keeps routing");
    }

    client.request("POST", "/v1/shutdown", "");
    gw_handle.join().expect("gateway drains");
    for (addr, handle) in [(addr0, h0), (addr1, h1)] {
        let mut stream = TcpStream::connect(&addr).expect("backend still up");
        stream.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
        drop(stream);
        handle.join().expect("backend drains");
    }
}

#[test]
fn parse_errors_advertise_connection_close_and_the_gateway_hangs_up() {
    let (addr0, h0, _b0) = spawn_backend("b0");
    let (gw_addr, gw_handle) = spawn_gateway(vec![addr0.clone()]);

    // A request the parser must reject: two Content-Length headers that
    // disagree. After such an error the gateway cannot know where the next
    // request starts, so the 400 must say `Connection: close` *and* the
    // socket must actually close — header and behavior agree.
    let mut stream = TcpStream::connect(&gw_addr).expect("connect gateway");
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_secs(30))).ok();
    stream
        .write_all(
            b"POST /v1/query HTTP/1.1\r\nHost: lca\r\n\
              Content-Length: 2\r\nContent-Length: 5\r\n\r\n{}",
        )
        .expect("write malformed request");
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("read until the gateway hangs up");
    assert!(
        response.starts_with("HTTP/1.1 400 "),
        "expected a 400, got {response:?}"
    );
    let head = response
        .split("\r\n\r\n")
        .next()
        .unwrap()
        .to_ascii_lowercase();
    assert!(
        head.contains("connection: close"),
        "400 must advertise the close it performs: {response:?}"
    );
    assert!(
        !head.contains("connection: keep-alive"),
        "conflicting connection headers: {response:?}"
    );
    // `read_to_string` returning proves EOF: the gateway really hung up
    // instead of waiting for a next request it could not frame.

    // Well-formed traffic on a fresh connection is unaffected.
    let mut client = HttpClient::connect(&gw_addr);
    let (status, response) = client.query(&spec_query(1, "close-test", 3));
    assert_eq!(status, 200, "{response:?}");

    client.request("POST", "/v1/shutdown", "");
    gw_handle.join().expect("gateway drains");
    let mut stream = TcpStream::connect(&addr0).expect("backend still up");
    stream.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
    drop(stream);
    h0.join().expect("backend drains");
}

#[test]
fn a_dead_backend_fails_typed_while_other_shards_keep_serving() {
    let (addr0, h0, _b0) = spawn_backend("b0");
    let (addr1, h1, _b1) = spawn_backend("b1");
    let names = [name_for_shard(0), name_for_shard(1)];

    let (gw_addr, gw_handle) = spawn_gateway(vec![addr0.clone(), addr1.clone()]);
    let mut client = HttpClient::connect(&gw_addr);
    for name in &names {
        let (status, _) = client.query(&spec_query(1, name, 9));
        assert_eq!(status, 200);
    }

    // Kill shard 1's backend out from under the gateway.
    let mut stream = TcpStream::connect(&addr1).expect("connect backend 1");
    stream.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
    drop(stream);
    h1.join().expect("backend 1 drains");

    // Its shard fails typed — even with the spec injected, there is no
    // process to serve it (the retry dials a dead port).
    let (status, response) = client.query(&format!(
        "{{\"id\":2,\"session\":\"{}\",\"query\":9}}",
        names[1]
    ));
    assert_eq!(status, 503, "{response:?}");
    assert_eq!(
        response.get("error").and_then(Json::as_str),
        Some("backend-unavailable")
    );
    assert_eq!(response.get("id").and_then(Json::as_u64), Some(2));

    // The other shard never notices.
    let (status, response) = client.query(&format!(
        "{{\"id\":3,\"session\":\"{}\",\"query\":9}}",
        names[0]
    ));
    assert_eq!(status, 200, "{response:?}");
    assert!(response.get("answer").is_some());

    // Stats degrade gracefully: the dead member reports its error, the
    // rollup counts the survivors.
    let (status, stats) = client.request("GET", "/v1/stats", "");
    assert_eq!(status, 200);
    let fleet = stats.get("fleet").expect("fleet rollup");
    assert_eq!(fleet.get("backends").and_then(Json::as_u64), Some(2));
    assert_eq!(fleet.get("backends_up").and_then(Json::as_u64), Some(1));
    assert!(fleet.get("unavailable").and_then(Json::as_u64).unwrap() >= 1);
    let members = stats.get("backends").and_then(Json::as_array).unwrap();
    assert_eq!(members[0].get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(members[1].get("ok").and_then(Json::as_bool), Some(false));
    assert!(members[1].get("error").is_some());

    client.request("POST", "/v1/shutdown", "");
    gw_handle.join().expect("gateway drains");
    let mut stream = TcpStream::connect(&addr0).expect("backend 0 still up");
    stream.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
    drop(stream);
    h0.join().expect("backend 0 drains");
}
