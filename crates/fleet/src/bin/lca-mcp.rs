//! `lca-mcp` — the MCP stdio adapter over a fleet of `lca-serve`
//! backends.
//!
//! ```text
//! lca-mcp --backends 127.0.0.1:7400,127.0.0.1:7401
//! ```
//!
//! Speaks newline-delimited JSON-RPC 2.0 on stdin/stdout (the MCP stdio
//! transport) and exposes the `lca_query` and `lca_stats` tools; see
//! `docs/PROTOCOL.md` for the tool schemas. All routing and replication
//! behavior is identical to `lca-gateway` — both sit on the same fleet
//! router.

use std::io::{BufRead, Write};
use std::process::ExitCode;

use lca_fleet::{mcp, Fleet};

fn parse_backends() -> Result<Vec<String>, String> {
    let mut backends = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--backends" => {
                let list = it.next().ok_or("--backends needs a value")?;
                backends = list
                    .split(',')
                    .map(|s| s.trim().to_owned())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            "--help" | "-h" => {
                return Err("usage: lca-mcp --backends host:port[,host:port…]".to_owned())
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    if backends.is_empty() {
        return Err("--backends is required (comma-separated host:port list)".to_owned());
    }
    Ok(backends)
}

fn main() -> ExitCode {
    let backends = match parse_backends() {
        Ok(backends) => backends,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let fleet = Fleet::new(backends);
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut line = String::new();
    loop {
        line.clear();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {
                if let Some(response) = mcp::handle_message(&fleet, &line) {
                    let mut out = stdout.lock();
                    if writeln!(out, "{response}")
                        .and_then(|()| out.flush())
                        .is_err()
                    {
                        break;
                    }
                }
            }
        }
    }
    ExitCode::SUCCESS
}
