//! `lca-gateway` — the HTTP/JSON front end over a fleet of `lca-serve`
//! backends.
//!
//! ```text
//! lca-gateway --addr 127.0.0.1:7500 \
//!             --backends 127.0.0.1:7400,127.0.0.1:7401 \
//!             [--backend-frames json|binary]
//! ```
//!
//! Prints `{"listening":"<addr>"}` once bound (port 0 picks an ephemeral
//! port), then serves `POST /v1/query`, `GET /v1/stats`,
//! `GET /v1/sessions`, and `POST /v1/shutdown` until drained. Sessions
//! route to backends by deterministic name hash; restarting the gateway
//! with the same `--backends` list (same order) routes identically.
//!
//! `--backend-frames binary` makes every pooled backend connection
//! negotiate length-prefixed binary response frames (one `hello`
//! handshake per dialed connection). The HTTP side is unchanged —
//! clients still see JSON bodies; only the gateway↔backend hop shrinks.

// This binary's product is its stdout; the workspace print ban
// applies to library code, not report/CLI entry points.
#![allow(clippy::print_stdout)]
use std::process::ExitCode;

use lca_fleet::{Fleet, Gateway, GatewayConfig};
use lca_serve::proto::FrameFormat;

struct Args {
    addr: String,
    backends: Vec<String>,
    backend_frames: FrameFormat,
    config: GatewayConfig,
    max_connections: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7500".to_owned(),
        backends: Vec::new(),
        backend_frames: FrameFormat::Json,
        config: GatewayConfig::default(),
        max_connections: 10_240,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--backends" => {
                args.backends = value("--backends")?
                    .split(',')
                    .map(|s| s.trim().to_owned())
                    .filter(|s| !s.is_empty())
                    .collect()
            }
            "--backend-frames" => {
                let name = value("--backend-frames")?;
                args.backend_frames = FrameFormat::parse(&name).ok_or_else(|| {
                    format!("--backend-frames: unknown framing {name:?} (json|binary)")
                })?;
            }
            "--workers" => {
                args.config.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--queue" => {
                args.config.queue_capacity = value("--queue")?
                    .parse()
                    .map_err(|e| format!("--queue: {e}"))?
            }
            "--max-connections" => {
                args.max_connections = value("--max-connections")?
                    .parse()
                    .map_err(|e| format!("--max-connections: {e}"))?
            }
            "--help" | "-h" => {
                return Err(
                    "usage: lca-gateway --backends host:port[,host:port…] [--addr host:port] \
                     [--backend-frames json|binary] [--workers N] [--queue N] \
                     [--max-connections C]"
                        .to_owned(),
                )
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    if args.backends.is_empty() {
        return Err("--backends is required (comma-separated host:port list)".to_owned());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = lca_serve::raise_fd_limit(args.max_connections + 128) {
        eprintln!("warning: could not raise fd limit: {e}");
    }
    let gateway = Gateway::new(
        Fleet::with_frames(args.backends, args.backend_frames),
        args.config,
    );
    let listener = match std::net::TcpListener::bind(&*args.addr) {
        Ok(listener) => listener,
        Err(e) => {
            eprintln!("failed to bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    match listener.local_addr() {
        Ok(addr) => println!("{{\"listening\":\"{addr}\"}}"),
        Err(e) => {
            eprintln!("failed to read bound address: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = gateway.serve(listener) {
        eprintln!("gateway error: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "drained: {} HTTP requests served across {} backends",
        gateway.requests_served(),
        gateway.fleet().backend_count()
    );
    ExitCode::SUCCESS
}
