//! `lca-fleet` — an HTTP/JSON gateway and multi-process fleet router
//! presenting one session namespace over N `lca-serve` backends.
//!
//! The serve crate made one process a long-lived LCA oracle; this crate
//! makes *several* of them look like one. The trick is the paper's own:
//! an LCA session is rebuildable from its `(kind, family, n, seed)` spec
//! alone — state is a seed, not a tape — so "replication" degenerates to
//! *spec exchange* and the fleet needs no shared storage, no session
//! migration, and no consensus. Deterministic routing does the rest:
//!
//! * **HTTP framing** ([`http`]) — a minimal std-only HTTP/1.1 subset
//!   (`POST /v1/query`, `GET /v1/stats`, `GET /v1/sessions`,
//!   `POST /v1/shutdown`); status codes map from the wire protocol's
//!   typed error codes per the table in `docs/PROTOCOL.md`.
//! * **Backend clients** ([`client`]) — pooled persistent newline-JSON
//!   connections to each backend.
//! * **Router** ([`router`]) — sessions land on
//!   `shard_for_str(name, N)`, the same Fibonacci-hash sharding the
//!   backends use internally, so any gateway (or restart of one) routes
//!   identically with zero coordination; specs are cached on first sight
//!   and injected into spec-less requests; connection failures retry
//!   once (queries are idempotent) then answer the typed
//!   `backend-unavailable`; `stats` aggregates per-backend snapshots
//!   into a fleet rollup.
//! * **Gateway reactor** ([`gateway`]) — the serve crate's event-driven
//!   front end, re-instantiated for HTTP: one thread multiplexes every
//!   client connection ([`lca_serve::sys`]), a bounded worker pool
//!   ([`lca_serve::pool`]) does the blocking backend round trips, and
//!   per-connection sequencing keeps HTTP/1.1 pipelined responses in
//!   request order.
//! * **MCP adapter** ([`mcp`]) — `lca_query`/`lca_stats` tools over
//!   newline JSON-RPC stdio, for MCP hosts.
//!
//! Binaries: `lca-gateway` (the HTTP front end) and `lca-mcp` (the stdio
//! adapter). `lca-loadgen --target http://…` drives the gateway with the
//! same traffic shapes and verification it aims at single backends.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod client;
pub mod gateway;
pub mod http;
pub mod mcp;
pub mod router;

pub use gateway::{Gateway, GatewayConfig};
pub use router::{status_for_code, Fleet, FleetReply};
