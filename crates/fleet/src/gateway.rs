//! The HTTP front end: one reactor thread, every client connection.
//!
//! Same shape as the serve crate's reactor — nonblocking sockets over
//! [`lca_serve::sys::Poller`] readiness, a slab of generation-tagged
//! connection slots, a worker pool doing the blocking work, and a
//! coalesced completion queue handing finished responses back — but the
//! framing is HTTP/1.1 ([`crate::http`]) and the work is a fleet round
//! trip ([`crate::router::Fleet`]) instead of a local query.
//!
//! ```text
//!  HTTP clients ──readiness──► gateway reactor ──admit──► worker pool
//!       ▲                           ▲                      │ (blocking
//!       │                           │                      │  backend
//!       └────────write bufs─────────┴── completions ◄──────┘  round trip)
//! ```
//!
//! **Responses stay in request order.** HTTP/1.1 pipelining requires it,
//! so each connection runs *sequentially*: while a deferred request is in
//! flight its connection parses nothing further — later pipelined bytes
//! wait in the read buffer until the response delivers. Concurrency comes
//! from many connections, not from reordering one connection's requests
//! (the load generator's open-loop mode drives one pipelined connection
//! per sender thread and relies on exactly this ordering).

#![warn(clippy::unwrap_used)]
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use lca_serve::pool::{RejectReason, WorkerPool};
use lca_serve::sys::{Event, Poller, Waker};

use crate::http::{self, HttpRequest, ParseOutcome};
use crate::router::Fleet;

/// Registration token of the listener; connection tokens (slab index in
/// the low 32 bits, generation above) never collide with it.
const LISTENER_TOKEN: u64 = u64::MAX - 1;

/// A connection buffering more than this has stopped reading its
/// responses and is dropped.
const MAX_WRITE_BUFFER: usize = 16 << 20;

/// Upper bound on one `wait`: drain-progress and lost-wake recovery
/// latency (completions wake the poller immediately).
const WAIT_TIMEOUT: Duration = Duration::from_millis(100);

/// How long a drain tolerates connections that will not accept their
/// remaining bytes before force-closing them.
const DRAIN_GRACE: Duration = Duration::from_secs(5);

/// Sizing knobs for a [`Gateway`].
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Worker threads doing backend round trips (default: available
    /// parallelism). Each in-flight HTTP request occupies one worker for
    /// the duration of its backend round trip, so this also bounds the
    /// gateway's concurrent demand on the fleet.
    pub workers: usize,
    /// Admission-queue bound; requests beyond it are answered `429
    /// overloaded` (default 1024).
    pub queue_capacity: usize,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            queue_capacity: 1024,
        }
    }
}

/// The gateway: the fleet router plus the worker pool that executes its
/// round trips, shared between the reactor thread and HTTP handlers.
pub struct Gateway {
    fleet: Arc<Fleet>,
    pool: WorkerPool,
    draining: AtomicBool,
    /// HTTP requests answered (any status), across all connections.
    requests: AtomicU64,
}

impl Gateway {
    /// Builds a gateway over `fleet` (spawns its worker pool immediately).
    pub fn new(fleet: Fleet, config: GatewayConfig) -> Arc<Gateway> {
        Arc::new(Gateway {
            fleet: Arc::new(fleet),
            pool: WorkerPool::new(config.workers, config.queue_capacity),
            draining: AtomicBool::new(false),
            requests: AtomicU64::new(0),
        })
    }

    /// The fleet this gateway routes over.
    pub fn fleet(&self) -> &Arc<Fleet> {
        &self.fleet
    }

    /// `true` once a `POST /v1/shutdown` has been accepted.
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// HTTP requests answered so far.
    pub fn requests_served(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Serves HTTP on `listener` until a shutdown request drains the
    /// gateway. One reactor thread owns every socket; pool workers own
    /// every backend round trip.
    pub fn serve(self: &Arc<Self>, listener: TcpListener) -> io::Result<()> {
        let result = Reactor::run(self.clone(), listener);
        self.pool.shutdown();
        result
    }
}

/// Worker→reactor handoff of rendered HTTP response bytes. Wakes are
/// coalesced exactly like the serve reactor's: only the empty→nonempty
/// transition writes the wake pipe.
struct Completions {
    queue: Mutex<Vec<(u64, Vec<u8>)>>,
    waker: Waker,
}

impl Completions {
    fn push(&self, token: u64, response: Vec<u8>) {
        let was_empty = {
            // lint:allow(panic) — poisoned queue means a worker already panicked; propagate
            let mut queue = self.queue.lock().expect("completion queue poisoned");
            let was_empty = queue.is_empty();
            queue.push((token, response));
            was_empty
        };
        if was_empty {
            self.waker.wake();
        }
    }

    fn drain(&self) -> Vec<(u64, Vec<u8>)> {
        // lint:allow(panic) — poisoned queue means a worker already panicked; propagate
        std::mem::take(&mut *self.queue.lock().expect("completion queue poisoned"))
    }
}

/// One HTTP connection's state machine.
struct Conn {
    stream: TcpStream,
    /// Bytes read but not yet framed into a complete request.
    read_buf: Vec<u8>,
    /// How far into `read_buf` the head scan has already looked
    /// ([`http::try_parse`]'s resume cursor); reset to 0 whenever consumed
    /// bytes are drained from the front.
    scanned: usize,
    /// Rendered responses awaiting socket space.
    write_buf: VecDeque<u8>,
    /// A deferred request is in flight; parse nothing further until its
    /// response delivers (the ordering rule in the module docs).
    busy: bool,
    /// EOF seen from the peer; flush what we owe, then close.
    peer_closed: bool,
    /// Close once the write buffer flushes (after a framing-error 400).
    close_after_flush: bool,
    /// Whether the poller watches this fd for write readiness.
    want_write: bool,
}

struct Slot {
    gen: u32,
    conn: Option<Conn>,
}

fn token_of(idx: usize, gen: u32) -> u64 {
    ((gen as u64) << 32) | idx as u64
}

fn split_token(token: u64) -> (usize, u32) {
    ((token & u32::MAX as u64) as usize, (token >> 32) as u32)
}

struct Reactor {
    gateway: Arc<Gateway>,
    poller: Poller,
    listener: Option<TcpListener>,
    completions: Arc<Completions>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    /// Deferred jobs admitted and not yet delivered, across all
    /// connections (including ones that died while the job ran).
    in_flight: usize,
    open: usize,
    drain_started: Option<std::time::Instant>,
}

impl Reactor {
    fn run(gateway: Arc<Gateway>, listener: TcpListener) -> io::Result<()> {
        listener.set_nonblocking(true)?;
        let mut poller = Poller::new()?;
        poller.register(listener.as_raw_fd(), LISTENER_TOKEN, false)?;
        let completions = Arc::new(Completions {
            queue: Mutex::new(Vec::new()),
            waker: poller.waker(),
        });
        let mut reactor = Reactor {
            gateway,
            poller,
            listener: Some(listener),
            completions,
            slots: Vec::new(),
            free: Vec::new(),
            in_flight: 0,
            open: 0,
            drain_started: None,
        };
        let result = reactor.event_loop();
        for idx in 0..reactor.slots.len() {
            reactor.close_conn(idx);
        }
        result
    }

    fn event_loop(&mut self) -> io::Result<()> {
        let mut events: Vec<Event> = Vec::new();
        loop {
            self.poller.wait(&mut events, WAIT_TIMEOUT)?;
            self.deliver_completions();
            for &ev in &events {
                if ev.token == LISTENER_TOKEN {
                    if ev.readable {
                        self.accept_ready();
                    }
                } else {
                    self.conn_ready(ev);
                }
            }
            if self.gateway.draining() {
                self.stop_accepting();
                let drain_started = *self
                    .drain_started
                    .get_or_insert_with(std::time::Instant::now);
                let grace_expired = drain_started.elapsed() >= DRAIN_GRACE;
                for idx in 0..self.slots.len() {
                    let done = matches!(
                        self.conn_ref(idx),
                        Some(c) if !c.busy && (grace_expired || c.write_buf.is_empty())
                    );
                    if done {
                        self.close_conn(idx);
                    }
                }
                if self.open == 0 && self.in_flight == 0 {
                    return Ok(());
                }
            }
        }
    }

    fn stop_accepting(&mut self) {
        if let Some(listener) = self.listener.take() {
            let _ = self.poller.deregister(listener.as_raw_fd(), LISTENER_TOKEN);
        }
    }

    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if self.gateway.draining() {
                        continue;
                    }
                    self.register_conn(stream);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    std::thread::sleep(Duration::from_millis(1));
                    return;
                }
            }
        }
    }

    fn register_conn(&mut self, stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let idx = match self.free.pop() {
            Some(idx) => idx,
            None => {
                self.slots.push(Slot { gen: 0, conn: None });
                self.slots.len() - 1
            }
        };
        let Some(token) = self.token_at(idx) else {
            return;
        };
        if self
            .poller
            .register(stream.as_raw_fd(), token, false)
            .is_err()
        {
            self.free.push(idx);
            return;
        }
        let Some(slot) = self.slots.get_mut(idx) else {
            return;
        };
        slot.conn = Some(Conn {
            stream,
            read_buf: Vec::new(),
            scanned: 0,
            write_buf: VecDeque::new(),
            busy: false,
            peer_closed: false,
            close_after_flush: false,
            want_write: false,
        });
        self.open += 1;
    }

    fn close_conn(&mut self, idx: usize) {
        let Some(slot) = self.slots.get_mut(idx) else {
            return;
        };
        let token = token_of(idx, slot.gen);
        let Some(conn) = slot.conn.take() else {
            return;
        };
        slot.gen = slot.gen.wrapping_add(1);
        let _ = self.poller.deregister(conn.stream.as_raw_fd(), token);
        self.free.push(idx);
        self.open -= 1;
    }

    fn live(&self, token: u64) -> Option<usize> {
        let (idx, gen) = split_token(token);
        match self.slots.get(idx) {
            Some(slot) if slot.gen == gen && slot.conn.is_some() => Some(idx),
            _ => None,
        }
    }

    /// The live connection at `idx`, if any — an already-closed slot (a
    /// dispatch or flush raced a close) is `None`, never a panic.
    fn conn_ref(&self, idx: usize) -> Option<&Conn> {
        self.slots.get(idx).and_then(|slot| slot.conn.as_ref())
    }

    /// Mutable variant of [`Reactor::conn_ref`].
    fn conn_mut(&mut self, idx: usize) -> Option<&mut Conn> {
        self.slots.get_mut(idx).and_then(|slot| slot.conn.as_mut())
    }

    /// The poll token currently naming `idx`, if the slot exists.
    fn token_at(&self, idx: usize) -> Option<u64> {
        self.slots.get(idx).map(|slot| token_of(idx, slot.gen))
    }

    fn deliver_completions(&mut self) {
        for (token, response) in self.completions.drain() {
            self.in_flight -= 1;
            let Some(idx) = self.live(token) else {
                continue;
            };
            let Some(conn) = self.conn_mut(idx) else {
                continue;
            };
            conn.busy = false;
            conn.write_buf.extend(response);
            self.flush_conn(idx);
            // The response freed the connection: pipelined requests
            // buffered behind it can now run.
            if self.conn_ref(idx).is_some() {
                self.process_buffer(idx);
            }
        }
    }

    fn conn_ready(&mut self, ev: Event) {
        let Some(idx) = self.live(ev.token) else {
            return;
        };
        if ev.readable {
            self.read_ready(idx);
        }
        if ev.writable && self.conn_ref(idx).is_some() {
            self.flush_conn(idx);
        }
    }

    fn read_ready(&mut self, idx: usize) {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            let Some(conn) = self.conn_mut(idx) else {
                return;
            };
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.peer_closed = true;
                    break;
                }
                Ok(k) => {
                    conn.read_buf
                        .extend_from_slice(chunk.get(..k).unwrap_or(&[]));
                    if conn.read_buf.len() > http::MAX_HEAD + http::MAX_BODY {
                        self.close_conn(idx);
                        return;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(idx);
                    return;
                }
            }
        }
        self.process_buffer(idx);
        if self.conn_ref(idx).is_some() {
            self.maybe_close_finished(idx);
        }
    }

    /// Frames and dispatches buffered requests until the connection goes
    /// busy (a deferred request in flight), runs dry, or dies.
    fn process_buffer(&mut self, idx: usize) {
        loop {
            let Some(conn) = self.conn_mut(idx) else {
                return;
            };
            if conn.busy || conn.close_after_flush {
                return;
            }
            match http::try_parse(&conn.read_buf, &mut conn.scanned) {
                ParseOutcome::Incomplete => return,
                ParseOutcome::Error(msg) => {
                    // This connection is about to be dropped after the
                    // flush: the response must say so, not keep-alive.
                    let body = format!(r#"{{"error":"bad-request","message":"{msg}"}}"#);
                    conn.write_buf
                        .extend(http::render_close_response(400, &body));
                    conn.close_after_flush = true;
                    self.gateway.requests.fetch_add(1, Ordering::Relaxed);
                    self.flush_conn(idx);
                    return;
                }
                ParseOutcome::Request(request, consumed) => {
                    let Some(conn) = self.conn_mut(idx) else {
                        return;
                    };
                    conn.read_buf.drain(..consumed);
                    conn.scanned = 0;
                    self.gateway.requests.fetch_add(1, Ordering::Relaxed);
                    self.dispatch(idx, request);
                    if self.conn_ref(idx).is_none() {
                        return;
                    }
                }
            }
        }
    }

    /// Routes one framed request: control endpoints answer inline, the
    /// fleet endpoints defer to the worker pool (a blocking backend round
    /// trip never runs on the reactor thread).
    fn dispatch(&mut self, idx: usize, request: HttpRequest) {
        let inline: (u16, String) = match (request.method.as_str(), request.path.as_str()) {
            ("POST", "/v1/query") => match String::from_utf8(request.body) {
                Ok(body) => {
                    let gateway = self.gateway.clone();
                    return self.defer(idx, move || {
                        let reply = gateway.fleet.query(&body);
                        http::render_response(reply.status, &reply.body)
                    });
                }
                Err(_) => (
                    400,
                    r#"{"error":"bad-request","message":"body is not UTF-8"}"#.to_owned(),
                ),
            },
            ("GET", "/v1/stats") => {
                let gateway = self.gateway.clone();
                return self.defer(idx, move || {
                    let reply = gateway.fleet.stats();
                    http::render_response(reply.status, &reply.body)
                });
            }
            ("GET", "/v1/sessions") => {
                let gateway = self.gateway.clone();
                return self.defer(idx, move || {
                    let reply = gateway.fleet.sessions();
                    http::render_response(reply.status, &reply.body)
                });
            }
            ("POST", "/v1/shutdown") => {
                self.gateway.draining.store(true, Ordering::SeqCst);
                (200, r#"{"ok":true,"draining":true}"#.to_owned())
            }
            (_, "/v1/query" | "/v1/stats" | "/v1/sessions" | "/v1/shutdown") => (
                405,
                r#"{"error":"bad-request","message":"method not allowed"}"#.to_owned(),
            ),
            _ => (
                404,
                r#"{"error":"bad-request","message":"unknown path"}"#.to_owned(),
            ),
        };
        let (status, body) = inline;
        let Some(conn) = self.conn_mut(idx) else {
            return;
        };
        conn.write_buf.extend(http::render_response(status, &body));
        self.flush_conn(idx);
    }

    /// Admits `job` to the worker pool for this connection; the rendered
    /// response bytes come back through the completion queue. Pool-full
    /// answers the typed `overloaded` error inline — the same admission
    /// control the backends apply, enforced again at the HTTP tier.
    fn defer(&mut self, idx: usize, job: impl FnOnce() -> Vec<u8> + Send + 'static) {
        let Some(token) = self.token_at(idx) else {
            return;
        };
        let completions = self.completions.clone();
        match self
            .gateway
            .pool
            .try_execute(move || completions.push(token, job()))
        {
            Ok(()) => {
                // Count in_flight unconditionally: the job was handed to
                // the pool and its completion drains either way.
                self.in_flight += 1;
                if let Some(conn) = self.conn_mut(idx) {
                    conn.busy = true;
                }
            }
            Err(reject) => {
                let (status, code) = match reject {
                    RejectReason::Full => (429, "overloaded"),
                    RejectReason::ShuttingDown => (503, "draining"),
                };
                let body = format!(r#"{{"error":"{code}","message":"gateway admission queue"}}"#);
                let Some(conn) = self.conn_mut(idx) else {
                    return;
                };
                conn.write_buf.extend(http::render_response(status, &body));
                self.flush_conn(idx);
            }
        }
    }

    fn flush_conn(&mut self, idx: usize) {
        let mut close = false;
        let mut interest = None;
        let Some(slot) = self.slots.get_mut(idx) else {
            return;
        };
        let gen = slot.gen;
        let Some(conn) = slot.conn.as_mut() else {
            return;
        };
        while !conn.write_buf.is_empty() {
            let (head, _) = conn.write_buf.as_slices();
            match conn.stream.write(head) {
                Ok(0) => {
                    close = true;
                    break;
                }
                Ok(k) => {
                    conn.write_buf.drain(..k);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    close = true;
                    break;
                }
            }
        }
        if conn.write_buf.len() > MAX_WRITE_BUFFER {
            close = true;
        }
        if conn.close_after_flush && conn.write_buf.is_empty() {
            close = true;
        }
        if !close {
            let needs_write = !conn.write_buf.is_empty();
            if needs_write != conn.want_write {
                conn.want_write = needs_write;
                interest = Some((conn.stream.as_raw_fd(), needs_write));
            }
        }
        if close {
            self.close_conn(idx);
            return;
        }
        if let Some((fd, needs_write)) = interest {
            let _ = self
                .poller
                .set_writable(fd, token_of(idx, gen), needs_write);
        }
        self.maybe_close_finished(idx);
    }

    fn maybe_close_finished(&mut self, idx: usize) {
        let done = matches!(
            self.conn_ref(idx),
            Some(c) if c.peer_closed && !c.busy && c.write_buf.is_empty()
        );
        if done {
            self.close_conn(idx);
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // tests assert; unwrap IS the assertion
mod tests {
    use super::*;

    #[test]
    fn tokens_round_trip_and_generations_differ() {
        for (idx, gen) in [(0usize, 0u32), (7, 3), (u32::MAX as usize, u32::MAX)] {
            let t = token_of(idx, gen);
            assert_eq!(split_token(t), (idx, gen));
            assert_ne!(t, LISTENER_TOKEN);
        }
        assert_ne!(token_of(5, 1), token_of(5, 2));
    }
}
