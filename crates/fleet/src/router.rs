//! Session→backend routing, spec replication, and the fleet rollup.
//!
//! One namespace across N processes: a session name deterministically
//! lands on `shard_for_str(name, N)` — the same Fibonacci-hash routing
//! the backends' own registry shards and probe caches use — so every
//! gateway instance (and every *restart* of one) sends a given session
//! to the same backend without any coordination state.
//!
//! Replication is **spec exchange**: a session is rebuildable from its
//! `(kind, family, n, seed, knob)` spec alone (state is a seed, not a
//! tape), so the gateway caches each session's spec on first sight and
//! injects it into every spec-less request it forwards. A backend that
//! restarts, or sees a session for the first time, lazily rebuilds the
//! instance from the injected spec — no session migration, no state
//! transfer, no `unknown-session` dance.
//!
//! Failure policy: queries are idempotent (answers are a pure function
//! of `(spec, query)`), so a round trip that fails on a *connection*
//! error is retried exactly once on a fresh connection; a second failure
//! answers the typed `backend-unavailable` error while every other shard
//! keeps serving.

#![warn(clippy::unwrap_used)]
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use lca_serve::proto::FrameFormat;
use serde::Json;

use crate::client::BackendPool;

/// The HTTP status the gateway pairs with a protocol error code (the
/// mapping table in `docs/PROTOCOL.md`).
pub fn status_for_code(code: &str) -> u16 {
    match code {
        "bad-request" | "unknown-spec" | "bad-query" => 400,
        "unknown-session" => 404,
        "session-mismatch" => 409,
        "budget-exhausted" => 422,
        "overloaded" => 429,
        "internal" => 500,
        "draining" | "backend-unavailable" => 503,
        "deadline-exceeded" => 504,
        _ => 500,
    }
}

/// One gateway-level reply: the HTTP status plus a one-line JSON body
/// (for successful queries, the backend's response line verbatim).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetReply {
    /// HTTP status code.
    pub status: u16,
    /// JSON body, no trailing newline.
    pub body: String,
}

impl FleetReply {
    /// Classifies a backend response line: `error` codes map through
    /// [`status_for_code`], everything else is 200.
    fn from_backend_line(line: String) -> FleetReply {
        let status = serde_json::from_str(&line)
            .ok()
            .as_ref()
            .and_then(|v| v.get("error"))
            .and_then(Json::as_str)
            .map_or(200, status_for_code);
        FleetReply { status, body: line }
    }

    /// A gateway-generated error body (echoing `id` when one was parsed,
    /// like every backend error does).
    fn error(status: u16, code: &str, message: &str, id: Option<u64>) -> FleetReply {
        let mut fields = Vec::new();
        if let Some(id) = id {
            fields.push(("id".to_owned(), Json::Num(id as f64)));
        }
        fields.push(("error".to_owned(), Json::Str(code.to_owned())));
        fields.push(("message".to_owned(), Json::Str(message.to_owned())));
        let mut body = String::new();
        Json::Obj(fields).render(&mut body);
        FleetReply { status, body }
    }
}

/// Default bound on the gateway's session-spec cache. Eviction is safe at
/// any size because a spec is *rebuildable* knowledge, not state: a session
/// whose spec was evicted just needs its next request to carry the spec
/// again (the same contract as a backend restart). The bound keeps a
/// million-session namespace from growing gateway memory without limit.
pub const DEFAULT_SPEC_CACHE_CAPACITY: usize = 65_536;

/// A bounded LRU map from session name to its learned spec fields.
/// Recency is a monotone tick stamped on insert and touch; eviction scans
/// for the minimum tick — O(capacity), fine at the cache's size and only
/// paid on insert past capacity.
struct SpecCache {
    map: HashMap<String, (Vec<(String, Json)>, u64)>,
    tick: u64,
    cap: usize,
    evictions: u64,
}

impl SpecCache {
    fn new(cap: usize) -> SpecCache {
        SpecCache {
            map: HashMap::new(),
            tick: 0,
            cap: cap.max(1),
            evictions: 0,
        }
    }

    fn insert(&mut self, session: &str, spec: Vec<(String, Json)>) {
        self.tick += 1;
        let tick = self.tick;
        if self.map.len() >= self.cap && !self.map.contains_key(session) {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
                self.evictions += 1;
            }
        }
        self.map.insert(session.to_owned(), (spec, tick));
    }

    fn get(&mut self, session: &str) -> Option<&Vec<(String, Json)>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(session).map(|(spec, t)| {
            *t = tick;
            &*spec
        })
    }
}

/// The fleet router: N backend pools, the session spec cache, and the
/// per-backend routing counters.
pub struct Fleet {
    backends: Vec<BackendPool>,
    /// Session name → the spec fields learned from the first spec-bearing
    /// request that named it (`kind`/`family`/`n`/`seed`/`knob`, verbatim).
    /// LRU-bounded: see [`DEFAULT_SPEC_CACHE_CAPACITY`].
    specs: Mutex<SpecCache>,
    /// Query requests routed to each backend (the per-shard routing-hit
    /// witness reported in fleet stats).
    routed: Vec<AtomicU64>,
    /// Round trips retried on a fresh connection after a connection error.
    retries: AtomicU64,
    /// Requests answered `backend-unavailable` after the retry also failed.
    unavailable: AtomicU64,
}

impl Fleet {
    /// A fleet over the given backend addresses (`host:port` each). Order
    /// is identity: position i is shard i, so a restarted gateway given
    /// the same `--backends` list routes identically. Backend connections
    /// speak newline-JSON responses.
    pub fn new(addrs: Vec<String>) -> Fleet {
        Self::with_options(addrs, DEFAULT_SPEC_CACHE_CAPACITY, FrameFormat::Json)
    }

    /// [`Fleet::new`] with an explicit spec-cache bound (tests use tiny
    /// capacities to exercise eviction).
    pub fn with_spec_capacity(addrs: Vec<String>, spec_capacity: usize) -> Fleet {
        Self::with_options(addrs, spec_capacity, FrameFormat::Json)
    }

    /// [`Fleet::new`] whose backend pools negotiate `frames` per dialed
    /// connection (`--backend-frames binary` on the gateway). Gateway HTTP
    /// bodies are unaffected — binary frames ride only the backend hop.
    pub fn with_frames(addrs: Vec<String>, frames: FrameFormat) -> Fleet {
        Self::with_options(addrs, DEFAULT_SPEC_CACHE_CAPACITY, frames)
    }

    fn with_options(addrs: Vec<String>, spec_capacity: usize, frames: FrameFormat) -> Fleet {
        assert!(!addrs.is_empty(), "a fleet needs at least one backend");
        let routed = addrs.iter().map(|_| AtomicU64::new(0)).collect();
        Fleet {
            backends: addrs
                .into_iter()
                .map(|addr| BackendPool::with_frames(addr, frames))
                .collect(),
            specs: Mutex::new(SpecCache::new(spec_capacity)),
            routed,
            retries: AtomicU64::new(0),
            unavailable: AtomicU64::new(0),
        }
    }

    /// Number of backends.
    pub fn backend_count(&self) -> usize {
        self.backends.len()
    }

    /// The backend index serving `session` — a pure function of the name
    /// and the fleet size, stable across gateway restarts.
    pub fn route(&self, session: &str) -> usize {
        lca_probe::shard_for_str(session, self.backends.len())
    }

    /// Handles one `POST /v1/query` body: learn or inject the session
    /// spec, route by session name, round trip with one idempotent retry.
    pub fn query(&self, body: &str) -> FleetReply {
        let parsed = match serde_json::from_str(body.trim()) {
            Ok(v) => v,
            Err(e) => {
                return FleetReply::error(400, "bad-request", &e.to_string(), None);
            }
        };
        let id = parsed.get("id").and_then(Json::as_u64);
        let Some(session) = parsed
            .get("session")
            .and_then(Json::as_str)
            .map(str::to_owned)
        else {
            return FleetReply::error(
                400,
                "bad-request",
                "missing string field `session` (control requests use /v1/stats and /v1/sessions)",
                id,
            );
        };
        let line = self.learn_or_inject_spec(&session, parsed);
        let idx = self.route(&session);
        if let Some(counter) = self.routed.get(idx) {
            counter.fetch_add(1, Ordering::Relaxed);
        }
        match self.forward(idx, &line) {
            Ok(response) => FleetReply::from_backend_line(response),
            Err(e) => {
                self.unavailable.fetch_add(1, Ordering::Relaxed);
                let addr = self.backends.get(idx).map_or("?", |b| b.addr());
                FleetReply::error(
                    503,
                    "backend-unavailable",
                    &format!("backend {idx} ({addr}) unreachable: {e}; other shards keep serving"),
                    id,
                )
            }
        }
    }

    /// Spec exchange: a spec-bearing request (`kind` + `n` present) has
    /// its spec fields cached for the session; a spec-less request gets
    /// the cached fields injected so the backend can lazily (re)build the
    /// instance. Returns the request line to forward.
    fn learn_or_inject_spec(&self, session: &str, parsed: Json) -> String {
        let has_spec = parsed.get("kind").is_some() && parsed.get("n").is_some();
        let Json::Obj(mut fields) = parsed else {
            // lint:allow(panic) — object-ness was checked by the session lookup
            unreachable!("object-ness checked by the session lookup");
        };
        if has_spec {
            let spec: Vec<(String, Json)> = fields
                .iter()
                .filter(|(k, _)| matches!(k.as_str(), "kind" | "family" | "n" | "seed" | "knob"))
                .cloned()
                .collect();
            self.specs
                .lock()
                // lint:allow(panic) — poison means a sibling worker panicked; propagate
                .expect("spec cache poisoned")
                .insert(session, spec);
        // lint:allow(panic) — poison means a sibling worker panicked; propagate
        } else if let Some(spec) = self.specs.lock().expect("spec cache poisoned").get(session) {
            for (k, v) in spec {
                if !fields.iter().any(|(name, _)| name == k) {
                    fields.push((k.clone(), v.clone()));
                }
            }
        }
        let mut line = String::new();
        Json::Obj(fields).render(&mut line);
        line
    }

    /// One round trip to backend `idx`, retried once on a fresh
    /// connection — queries are idempotent, so replaying a request whose
    /// connection died (backend restart, pooled connection gone stale)
    /// can only produce the same answer.
    fn forward(&self, idx: usize, line: &str) -> std::io::Result<String> {
        let Some(backend) = self.backends.get(idx) else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                "backend index out of range",
            ));
        };
        match backend.roundtrip(line) {
            Ok(response) => Ok(response),
            Err(_) => {
                self.retries.fetch_add(1, Ordering::Relaxed);
                backend.roundtrip(line)
            }
        }
    }

    /// Sends `request` to every backend, yielding each backend's parsed
    /// response (or the transport error).
    fn fan_out(&self, request: &str) -> Vec<std::io::Result<Json>> {
        self.backends
            .iter()
            .map(|pool| {
                pool.roundtrip(request).and_then(|line| {
                    serde_json::from_str(line.trim()).map_err(|e| {
                        std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
                    })
                })
            })
            .collect()
    }

    /// The `GET /v1/stats` reply: every backend's `stats` snapshot plus
    /// the fleet rollup (counter sums; cache totals summed with the
    /// `CacheStats` addition built for exactly this).
    pub fn stats(&self) -> FleetReply {
        let results = self.fan_out("{\"op\":\"stats\"}");
        let mut backends_up = 0usize;
        let mut requests = 0u64;
        let mut overloaded = 0u64;
        let mut budget_exhausted = 0u64;
        let mut parse_errors = 0u64;
        let mut sessions = 0u64;
        let mut cache_total = lca_probe::CacheStats {
            hits: 0,
            misses: 0,
            entries: 0,
        };
        let mut adaptive_sessions = 0u64;
        let mut per_backend = Vec::new();
        for (idx, result) in results.into_iter().enumerate() {
            let mut entry = vec![
                ("backend".to_owned(), Json::Num(idx as f64)),
                (
                    "addr".to_owned(),
                    Json::Str(self.backends.get(idx).map_or("?", |b| b.addr()).to_owned()),
                ),
            ];
            match result {
                Ok(parsed) => {
                    backends_up += 1;
                    let g = parsed.get("stats").cloned().unwrap_or(Json::Null);
                    let pick = |k: &str| g.get(k).and_then(Json::as_u64).unwrap_or(0);
                    requests += pick("requests");
                    overloaded += pick("overloaded");
                    budget_exhausted += pick("budget_exhausted");
                    parse_errors += pick("parse_errors");
                    sessions += pick("sessions");
                    cache_total = cache_total
                        + lca_probe::CacheStats {
                            hits: pick("cache_hits_total"),
                            misses: pick("cache_misses_total"),
                            entries: 0,
                        };
                    // Surface each backend's adaptively fitted budgets
                    // (session name → fitted max_probes) so a fleet
                    // operator sees the admission the whole fleet is
                    // applying from one `GET /v1/stats`.
                    let mut fitted = Vec::new();
                    if let Some(Json::Obj(sess)) = parsed.get("sessions") {
                        for (name, s) in sess {
                            let budget = s.get("budget");
                            let probes = budget
                                .and_then(|b| b.get("fitted_max_probes"))
                                .and_then(Json::as_u64)
                                .unwrap_or(0);
                            if probes > 0 {
                                adaptive_sessions += 1;
                                fitted.push((name.clone(), Json::Num(probes as f64)));
                            }
                        }
                    }
                    entry.push(("ok".to_owned(), Json::Bool(true)));
                    entry.push(("fitted_budgets".to_owned(), Json::Obj(fitted)));
                    entry.push(("stats".to_owned(), g));
                }
                Err(e) => {
                    entry.push(("ok".to_owned(), Json::Bool(false)));
                    entry.push(("error".to_owned(), Json::Str(e.to_string())));
                }
            }
            per_backend.push(Json::Obj(entry));
        }
        let (spec_entries, spec_evictions) = {
            // lint:allow(panic) — poison means a sibling worker panicked; propagate
            let cache = self.specs.lock().expect("spec cache poisoned");
            (cache.map.len() as u64, cache.evictions)
        };
        let num = |x: u64| Json::Num(x as f64);
        let fleet = Json::Obj(vec![
            ("backends".to_owned(), num(self.backends.len() as u64)),
            ("backends_up".to_owned(), num(backends_up as u64)),
            ("requests".to_owned(), num(requests)),
            ("overloaded".to_owned(), num(overloaded)),
            ("budget_exhausted".to_owned(), num(budget_exhausted)),
            ("parse_errors".to_owned(), num(parse_errors)),
            ("sessions".to_owned(), num(sessions)),
            ("cache_hits_total".to_owned(), num(cache_total.hits)),
            ("cache_misses_total".to_owned(), num(cache_total.misses)),
            (
                "cache_hit_rate_total".to_owned(),
                Json::Num(if cache_total.requests() == 0 {
                    0.0
                } else {
                    cache_total.hit_rate()
                }),
            ),
            (
                "routed".to_owned(),
                Json::Arr(
                    self.routed
                        .iter()
                        .map(|c| num(c.load(Ordering::Relaxed)))
                        .collect(),
                ),
            ),
            (
                "retries".to_owned(),
                num(self.retries.load(Ordering::Relaxed)),
            ),
            (
                "unavailable".to_owned(),
                num(self.unavailable.load(Ordering::Relaxed)),
            ),
            ("adaptive_sessions".to_owned(), num(adaptive_sessions)),
            ("spec_cache_entries".to_owned(), num(spec_entries)),
            ("spec_cache_evictions".to_owned(), num(spec_evictions)),
        ]);
        let mut body = String::new();
        Json::Obj(vec![
            ("fleet".to_owned(), fleet),
            ("backends".to_owned(), Json::Arr(per_backend)),
        ])
        .render(&mut body);
        FleetReply { status: 200, body }
    }

    /// The `GET /v1/sessions` reply: one namespace view merging every
    /// backend's resident sessions, each tagged with the backend that
    /// holds it.
    pub fn sessions(&self) -> FleetReply {
        let results = self.fan_out("{\"op\":\"sessions\"}");
        let mut merged: Vec<(String, Json)> = Vec::new();
        let mut down: Vec<Json> = Vec::new();
        for (idx, result) in results.into_iter().enumerate() {
            match result {
                Ok(parsed) => {
                    if let Some(Json::Obj(sessions)) = parsed.get("sessions").cloned() {
                        for (name, spec) in sessions {
                            let Json::Obj(mut fields) = spec else {
                                continue;
                            };
                            fields.push(("backend".to_owned(), Json::Num(idx as f64)));
                            merged.push((name, Json::Obj(fields)));
                        }
                    }
                }
                Err(_) => down.push(Json::Num(idx as f64)),
            }
        }
        merged.sort_by(|(a, _), (b, _)| a.cmp(b));
        let mut body = String::new();
        Json::Obj(vec![
            ("sessions".to_owned(), Json::Obj(merged)),
            ("backends_down".to_owned(), Json::Arr(down)),
        ])
        .render(&mut body);
        FleetReply { status: 200, body }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // tests assert; unwrap IS the assertion
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_restart_stable() {
        // Two independently constructed fleets (a "restart") must agree on
        // every session's backend, because routing is a pure function of
        // (name, fleet size).
        let a = Fleet::new(vec!["127.0.0.1:1".into(), "127.0.0.1:2".into()]);
        let b = Fleet::new(vec!["127.0.0.1:1".into(), "127.0.0.1:2".into()]);
        for i in 0..64 {
            let name = format!("session-{i}");
            assert_eq!(a.route(&name), b.route(&name), "{name}");
            assert_eq!(
                a.route(&name),
                lca_probe::shard_for_str(&name, 2),
                "routing is exactly the workspace's shard function"
            );
        }
        // Sanity: with enough names, both backends get traffic.
        let hit: std::collections::HashSet<usize> =
            (0..64).map(|i| a.route(&format!("session-{i}"))).collect();
        assert_eq!(hit.len(), 2);
    }

    #[test]
    fn spec_exchange_learns_then_injects() {
        let fleet = Fleet::new(vec!["127.0.0.1:1".into()]);
        let spec_bearing = serde_json::from_str(
            r#"{"session":"s","kind":"mis","family":"gnp","n":1000,"seed":7,"query":1}"#,
        )
        .unwrap();
        let line = fleet.learn_or_inject_spec("s", spec_bearing);
        assert!(line.contains("\"kind\":\"mis\""));
        // A later spec-less request is forwarded with the cached spec
        // injected — the backend can always rebuild the session.
        let spec_less = serde_json::from_str(r#"{"session":"s","query":2}"#).unwrap();
        let line = fleet.learn_or_inject_spec("s", spec_less);
        let parsed = serde_json::from_str(&line).unwrap();
        assert_eq!(parsed.get("kind").and_then(Json::as_str), Some("mis"));
        assert_eq!(parsed.get("n").and_then(Json::as_u64), Some(1000));
        assert_eq!(parsed.get("seed").and_then(Json::as_u64), Some(7));
        assert_eq!(parsed.get("query").and_then(Json::as_u64), Some(2));
        // Unknown sessions pass through untouched.
        let other = serde_json::from_str(r#"{"session":"t","query":3}"#).unwrap();
        let line = fleet.learn_or_inject_spec("t", other);
        assert!(serde_json::from_str(&line).unwrap().get("kind").is_none());
    }

    #[test]
    fn spec_cache_is_bounded_with_lru_eviction() {
        let fleet = Fleet::with_spec_capacity(vec!["127.0.0.1:1".into()], 2);
        let learn = |fleet: &Fleet, s: &str| {
            let parsed = serde_json::from_str(&format!(
                r#"{{"session":"{s}","kind":"mis","n":100,"query":1}}"#
            ))
            .unwrap();
            fleet.learn_or_inject_spec(s, parsed);
        };
        let knows = |fleet: &Fleet, s: &str| {
            let parsed =
                serde_json::from_str(&format!(r#"{{"session":"{s}","query":1}}"#)).unwrap();
            let line = fleet.learn_or_inject_spec(s, parsed);
            serde_json::from_str(&line).unwrap().get("kind").is_some()
        };
        learn(&fleet, "a");
        learn(&fleet, "b");
        // Touch "a" so "b" becomes least-recently-used, then overflow.
        assert!(knows(&fleet, "a"));
        learn(&fleet, "c");
        assert!(knows(&fleet, "a"), "recently touched entry survives");
        assert!(knows(&fleet, "c"), "new entry resident");
        assert!(!knows(&fleet, "b"), "LRU entry evicted at capacity");
        let cache = fleet.specs.lock().unwrap();
        assert_eq!(cache.map.len(), 2);
        assert_eq!(cache.evictions, 1);
    }

    #[test]
    fn error_codes_map_to_the_documented_statuses() {
        for (code, status) in [
            ("bad-request", 400),
            ("unknown-spec", 400),
            ("bad-query", 400),
            ("unknown-session", 404),
            ("session-mismatch", 409),
            ("budget-exhausted", 422),
            ("overloaded", 429),
            ("internal", 500),
            ("draining", 503),
            ("backend-unavailable", 503),
            ("deadline-exceeded", 504),
            ("never-heard-of-it", 500),
        ] {
            assert_eq!(status_for_code(code), status, "{code}");
        }
        let ok = FleetReply::from_backend_line(r#"{"answer":true,"probes":3}"#.to_owned());
        assert_eq!(ok.status, 200);
        let err =
            FleetReply::from_backend_line(r#"{"error":"overloaded","message":"x"}"#.to_owned());
        assert_eq!(err.status, 429);
    }

    #[test]
    fn unroutable_bodies_fail_typed_without_touching_a_backend() {
        // The only backend is unreachable, but these never get that far.
        let fleet = Fleet::new(vec!["127.0.0.1:1".into()]);
        let reply = fleet.query("not json");
        assert_eq!(reply.status, 400);
        assert!(reply.body.contains("bad-request"));
        let reply = fleet.query(r#"{"id":9,"query":1}"#);
        assert_eq!(reply.status, 400);
        assert!(reply.body.contains("\"id\":9"), "{}", reply.body);
        assert!(reply.body.contains("session"));
    }
}
