//! Minimal std-only HTTP/1.1 framing for the gateway.
//!
//! The gateway terminates a deliberately small slice of HTTP: request
//! line + headers + `Content-Length` body in, status line + JSON body
//! out, keep-alive by default. No chunked transfer, no trailers, no
//! `Expect: continue` — every client the fleet serves (the load
//! generator, `curl`, an MCP host's HTTP bridge, a CI python script)
//! speaks this subset. Parsing is incremental: bytes accumulate in the
//! connection's read buffer and [`try_parse`] either produces one
//! complete request (plus how many bytes it consumed), asks for more
//! bytes, or rejects the connection. The caller holds a scan cursor so
//! a trickled header block costs linear work, not a fresh full-buffer
//! rescan per read.

#![warn(clippy::unwrap_used)]
/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method, uppercased by the client (`GET`, `POST`, …).
    pub method: String,
    /// Request target as sent (path only; the gateway routes on exact
    /// paths and ignores any query string).
    pub path: String,
    /// The request body (`Content-Length` bytes; empty when absent).
    pub body: Vec<u8>,
}

/// What one [`try_parse`] attempt produced.
#[derive(Debug, PartialEq, Eq)]
pub enum ParseOutcome {
    /// The buffer does not yet hold a complete request — read more bytes.
    Incomplete,
    /// One complete request, and the number of buffer bytes it consumed
    /// (drain them before the next attempt, and reset the scan cursor).
    Request(HttpRequest, usize),
    /// The bytes are not a well-formed request within this module's
    /// limits; answer 400 and drop the connection.
    Error(&'static str),
}

/// Largest accepted request-line + header block.
pub const MAX_HEAD: usize = 64 << 10;
/// Largest accepted request body — matches the serve protocol's own
/// line cap (no legitimate query request is this large).
pub const MAX_BODY: usize = 16 << 20;

/// Attempts to frame one request off the front of `buf`.
///
/// `scanned` is a caller-held cursor over how far the head scan has
/// already looked: retries resume from it (minus the 3 bytes a split
/// `\r\n\r\n` could straddle) instead of rescanning from byte 0, which
/// turns a trickled 64 KiB head from O(n²) total work into O(n). Reset it
/// to 0 whenever consumed bytes are drained from the front of `buf`.
pub fn try_parse(buf: &[u8], scanned: &mut usize) -> ParseOutcome {
    let Some(head_end) = find_head_end(buf, scanned) else {
        if buf.len() > MAX_HEAD {
            return ParseOutcome::Error("header block exceeds 64 KiB");
        }
        return ParseOutcome::Incomplete;
    };
    if head_end > MAX_HEAD {
        return ParseOutcome::Error("header block exceeds 64 KiB");
    }
    let Some(head_bytes) = buf.get(..head_end) else {
        return ParseOutcome::Incomplete;
    };
    let Ok(head) = std::str::from_utf8(head_bytes) else {
        return ParseOutcome::Error("header block is not UTF-8");
    };
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return ParseOutcome::Error("malformed request line");
    };
    if !version.starts_with("HTTP/1.") {
        return ParseOutcome::Error("only HTTP/1.x is served");
    }
    let mut content_length: Option<usize> = None;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return ParseOutcome::Error("malformed header line");
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            match value.trim().parse::<usize>() {
                Ok(n) if n <= MAX_BODY => {
                    // Request-smuggling hygiene: a repeated Content-Length
                    // is only acceptable when every copy agrees — a
                    // conflicting duplicate means two parties would frame
                    // the stream differently.
                    if content_length.is_some_and(|prev| prev != n) {
                        return ParseOutcome::Error("conflicting duplicate content-length headers");
                    }
                    content_length = Some(n);
                }
                Ok(_) => return ParseOutcome::Error("body exceeds 16 MiB"),
                Err(_) => return ParseOutcome::Error("unparseable content-length"),
            }
        }
        if name.trim().eq_ignore_ascii_case("transfer-encoding") {
            return ParseOutcome::Error("chunked transfer encoding is not served");
        }
    }
    let content_length = content_length.unwrap_or(0);
    let body_start = head_end + 4;
    if buf.len() < body_start + content_length {
        return ParseOutcome::Incomplete;
    }
    // Strip any query string: routing is on exact paths.
    let path = target.split('?').next().unwrap_or(target).to_owned();
    let Some(body) = buf.get(body_start..body_start + content_length) else {
        return ParseOutcome::Incomplete;
    };
    ParseOutcome::Request(
        HttpRequest {
            method: method.to_owned(),
            path,
            body: body.to_vec(),
        },
        body_start + content_length,
    )
}

/// Byte offset of the `\r\n\r\n` head terminator, if present.
///
/// Resumes from `*scanned` (backed up 3 bytes for a terminator split
/// across reads) and advances it to the end of the region proven not to
/// contain the terminator, so repeated calls on a growing buffer never
/// re-examine old bytes.
fn find_head_end(buf: &[u8], scanned: &mut usize) -> Option<usize> {
    let start = scanned.saturating_sub(3).min(buf.len());
    let tail = buf.get(start..).unwrap_or(&[]);
    match tail.windows(4).position(|w| w == b"\r\n\r\n") {
        Some(pos) => {
            let head_end = start + pos;
            *scanned = head_end;
            Some(head_end)
        }
        None => {
            *scanned = buf.len();
            None
        }
    }
}

/// The reason phrase for the status codes the gateway emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

fn render(status: u16, body: &str, connection: &str) -> Vec<u8> {
    format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n{body}",
        reason(status),
        body.len()
    )
    .into_bytes()
}

/// Renders one keep-alive HTTP/1.1 response with a JSON body (for
/// connections the gateway keeps serving).
pub fn render_response(status: u16, body: &str) -> Vec<u8> {
    render(status, body, "keep-alive")
}

/// Renders one `Connection: close` HTTP/1.1 response with a JSON body —
/// for the paths (parse rejection) where the gateway drops the connection
/// after flushing, so the advertised header agrees with the behavior.
pub fn render_close_response(status: u16, body: &str) -> Vec<u8> {
    render(status, body, "close")
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // tests assert; unwrap IS the assertion
mod tests {
    use super::*;

    fn parse(buf: &[u8]) -> ParseOutcome {
        try_parse(buf, &mut 0)
    }

    #[test]
    fn parses_a_post_with_body_and_reports_consumption() {
        let raw = b"POST /v1/query HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbodyNEXT";
        let ParseOutcome::Request(req, consumed) = parse(raw) else {
            panic!("expected a request");
        };
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/query");
        assert_eq!(req.body, b"body");
        assert_eq!(&raw[consumed..], b"NEXT", "pipelined bytes survive");
    }

    #[test]
    fn parses_a_get_without_body_and_strips_query_strings() {
        let raw = b"GET /v1/stats?pretty=1 HTTP/1.1\r\nHost: x\r\n\r\n";
        let ParseOutcome::Request(req, consumed) = parse(raw) else {
            panic!("expected a request");
        };
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/stats");
        assert!(req.body.is_empty());
        assert_eq!(consumed, raw.len());
    }

    #[test]
    fn incomplete_requests_ask_for_more_bytes() {
        assert_eq!(parse(b"POST /v1/qu"), ParseOutcome::Incomplete);
        assert_eq!(
            parse(b"POST /v1/query HTTP/1.1\r\nContent-Length: 9\r\n\r\nshort"),
            ParseOutcome::Incomplete
        );
    }

    #[test]
    fn scan_cursor_resumes_across_trickled_reads() {
        // Feed a head one fragment at a time through one persistent
        // cursor, exactly like the gateway's read loop does.
        let raw = b"POST /v1/query HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody";
        let mut buf = Vec::new();
        let mut scanned = 0usize;
        for chunk in raw.chunks(7) {
            buf.extend_from_slice(chunk);
            match try_parse(&buf, &mut scanned) {
                ParseOutcome::Incomplete => {
                    // The cursor tracks progress but never outruns the
                    // buffer — and once past the split-terminator backup
                    // region it proves old bytes are never rescanned.
                    assert!(scanned <= buf.len());
                }
                ParseOutcome::Request(req, consumed) => {
                    assert_eq!(req.body, b"body");
                    assert_eq!(consumed, raw.len());
                    assert_eq!(buf.len(), raw.len(), "parsed only once all bytes arrived");
                    return;
                }
                ParseOutcome::Error(e) => panic!("unexpected parse error: {e}"),
            }
        }
        panic!("request never parsed");
    }

    #[test]
    fn scan_cursor_finds_a_terminator_split_across_reads() {
        // The 4-byte terminator straddles two reads: the 3-byte backup
        // must re-examine just enough to see it.
        let head = b"GET /v1/stats HTTP/1.1\r\n\r\n";
        let (a, b) = head.split_at(head.len() - 2);
        let mut buf = a.to_vec();
        let mut scanned = 0usize;
        assert_eq!(try_parse(&buf, &mut scanned), ParseOutcome::Incomplete);
        assert_eq!(scanned, a.len());
        buf.extend_from_slice(b);
        let ParseOutcome::Request(req, _) = try_parse(&buf, &mut scanned) else {
            panic!("expected a request after the terminator completes");
        };
        assert_eq!(req.path, "/v1/stats");
    }

    #[test]
    fn duplicate_content_length_headers_must_agree() {
        let conflicting = b"POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 5\r\n\r\nbody!";
        assert_eq!(
            parse(conflicting),
            ParseOutcome::Error("conflicting duplicate content-length headers")
        );
        // Agreeing duplicates frame identically — accepted.
        let agreeing = b"POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nbody";
        let ParseOutcome::Request(req, _) = parse(agreeing) else {
            panic!("agreeing duplicates should parse");
        };
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn malformed_requests_are_rejected_with_a_reason() {
        for raw in [
            &b"NOT-HTTP\r\n\r\n"[..],
            &b"GET / SPDY/3\r\n\r\n"[..],
            &b"GET / HTTP/1.1\r\nbroken header\r\n\r\n"[..],
            &b"POST / HTTP/1.1\r\nContent-Length: zero\r\n\r\n"[..],
            &b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"[..],
        ] {
            assert!(
                matches!(parse(raw), ParseOutcome::Error(_)),
                "{:?} should be rejected",
                String::from_utf8_lossy(raw)
            );
        }
    }

    #[test]
    fn responses_render_with_exact_content_length() {
        let bytes = render_response(429, r#"{"error":"overloaded"}"#);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Content-Length: 22\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"error\":\"overloaded\"}"));
    }

    #[test]
    fn close_responses_advertise_connection_close() {
        let bytes = render_close_response(400, r#"{"error":"bad-request"}"#);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 400 Bad Request\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(!text.contains("keep-alive"));
    }
}
