//! Persistent pooled newline-JSON clients for one `lca-serve` backend.
//!
//! The gateway's workers do blocking one-request/one-response round trips
//! against backends; this module keeps the TCP connections those round
//! trips ride on warm. Each [`BackendPool`] owns a stack of idle
//! connections to one backend address: a worker checks one out (or dials
//! a new one when the stack is empty), does its round trip, and returns
//! the connection for reuse. A connection that errored mid-round-trip is
//! simply dropped — the pool never tries to resurrect a broken stream,
//! and the *router* decides whether the request is retried on a fresh
//! connection (once, because queries are idempotent: answers are a pure
//! function of `(spec, query)`).

#![warn(clippy::unwrap_used)]
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::Duration;

use lca_serve::proto::{self, FrameFormat};

/// How long a dial may take before the backend counts as unreachable.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(2);
/// How long one round trip may wait on a response. Generous — a backend
/// that takes longer than this on one request line is not serving.
const READ_TIMEOUT: Duration = Duration::from_secs(30);
/// Idle connections kept per backend; beyond this, returned connections
/// are closed instead of pooled (workers bound the concurrent demand, so
/// the stack never usefully exceeds the worker count by much).
const MAX_IDLE: usize = 16;

/// One checked-out connection: a writer half plus a buffered reader half
/// of the same socket.
pub struct BackendConn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    frames: FrameFormat,
}

impl BackendConn {
    /// Dials `addr` with the connect/read timeouts installed, speaking
    /// newline-JSON responses.
    pub fn connect(addr: &str) -> io::Result<BackendConn> {
        BackendConn::connect_with_frames(addr, FrameFormat::Json)
    }

    /// Dials `addr` and, for [`FrameFormat::Binary`], negotiates binary
    /// response frames with a `hello` handshake before the connection is
    /// handed out. Requests stay newline-JSON in both framings; decoded
    /// binary responses are re-rendered to the canonical JSON line, so
    /// callers see identical round-trip strings either way.
    pub fn connect_with_frames(addr: &str, frames: FrameFormat) -> io::Result<BackendConn> {
        let sock_addr = addr
            .parse()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, format!("{addr}: {e}")))?;
        let stream = TcpStream::connect_timeout(&sock_addr, CONNECT_TIMEOUT)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(READ_TIMEOUT))?;
        let writer = stream.try_clone()?;
        let mut conn = BackendConn {
            writer,
            reader: BufReader::new(stream),
            frames: FrameFormat::Json,
        };
        if frames == FrameFormat::Binary {
            // The acknowledgement itself arrives as newline-JSON; only
            // responses after it switch to binary frames.
            let ack = conn.roundtrip(&proto::hello_line(frames))?;
            let parsed = serde_json::from_str(&ack).map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidData, format!("hello ack: {e}"))
            })?;
            let accepted = parsed.get("frame").and_then(serde::Json::as_str) == Some("binary");
            if !accepted {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("backend refused binary framing: {ack}"),
                ));
            }
            conn.frames = FrameFormat::Binary;
        }
        Ok(conn)
    }

    /// Sends one request line and reads one response (a line, or one
    /// binary frame re-rendered to its JSON line). An EOF before the
    /// response is an error (the backend went away mid-request).
    pub fn roundtrip(&mut self, line: &str) -> io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        match self.frames {
            FrameFormat::Json => {
                let mut response = String::new();
                if self.reader.read_line(&mut response)? == 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "backend closed the connection before responding",
                    ));
                }
                Ok(response.trim_end().to_owned())
            }
            FrameFormat::Binary => match proto::read_binary_frame(&mut self.reader)? {
                Some(response) => Ok(response.render()),
                None => Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "backend closed the connection before responding",
                )),
            },
        }
    }
}

/// A pool of persistent connections to one backend.
pub struct BackendPool {
    addr: String,
    idle: Mutex<Vec<BackendConn>>,
    frames: FrameFormat,
}

impl BackendPool {
    /// A pool for the backend at `addr` (`host:port`); no connection is
    /// dialed until first use. Connections speak newline-JSON responses.
    pub fn new(addr: impl Into<String>) -> BackendPool {
        BackendPool::with_frames(addr, FrameFormat::Json)
    }

    /// A pool whose connections negotiate `frames` at dial time. With
    /// [`FrameFormat::Binary`] every pooled connection does the `hello`
    /// handshake once when dialed; round trips then read length-prefixed
    /// frames off the wire but still return the canonical JSON line.
    pub fn with_frames(addr: impl Into<String>, frames: FrameFormat) -> BackendPool {
        BackendPool {
            addr: addr.into(),
            idle: Mutex::new(Vec::new()),
            frames,
        }
    }

    /// The backend's address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Checks a connection out: an idle pooled one, or a fresh dial.
    pub fn get(&self) -> io::Result<BackendConn> {
        // lint:allow(panic) — poison means a sibling worker panicked; propagate
        if let Some(conn) = self.idle.lock().expect("pool poisoned").pop() {
            return Ok(conn);
        }
        BackendConn::connect_with_frames(&self.addr, self.frames)
    }

    /// Returns a healthy connection for reuse (dropped when the idle
    /// stack is full).
    pub fn put(&self, conn: BackendConn) {
        // lint:allow(panic) — poison means a sibling worker panicked; propagate
        let mut idle = self.idle.lock().expect("pool poisoned");
        if idle.len() < MAX_IDLE {
            idle.push(conn);
        }
    }

    /// One round trip with the pool's check-out/check-in discipline: a
    /// connection that completed its round trip goes back to the pool, a
    /// connection that errored is dropped and the error surfaces to the
    /// caller (who owns the retry policy).
    pub fn roundtrip(&self, line: &str) -> io::Result<String> {
        let mut conn = self.get()?;
        match conn.roundtrip(line) {
            Ok(response) => {
                self.put(conn);
                Ok(response)
            }
            Err(e) => Err(e), // conn drops here: never pool a broken stream
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // tests assert; unwrap IS the assertion
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn roundtrip_pools_and_reuses_the_connection() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            // One accepted connection must serve both round trips.
            let (stream, _) = listener.accept().unwrap();
            let mut writer = stream.try_clone().unwrap();
            let mut reader = BufReader::new(stream);
            for _ in 0..2 {
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                writer
                    .write_all(format!("echo:{}\n", line.trim()).as_bytes())
                    .unwrap();
            }
        });
        let pool = BackendPool::new(&addr);
        assert_eq!(pool.roundtrip("a").unwrap(), "echo:a");
        assert_eq!(pool.roundtrip("b").unwrap(), "echo:b");
        server.join().unwrap();
    }

    #[test]
    fn an_unreachable_backend_reports_the_dial_error() {
        // A port nothing listens on: bind to grab a free port, then drop
        // the listener before dialing.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        drop(listener);
        let pool = BackendPool::new(&addr);
        assert!(pool.roundtrip("x").is_err());
    }
}
