//! A thin MCP (Model Context Protocol) stdio adapter over the fleet.
//!
//! MCP's stdio transport is newline-delimited JSON-RPC 2.0: one message
//! per line on stdin, one response per line on stdout (notifications get
//! none). The adapter exposes two tools backed by the same client
//! library the gateway uses:
//!
//! * `lca_query` — arguments are a wire-protocol query request verbatim
//!   (`session`, `query`, and the `kind`/`family`/`n`/`seed` spec fields
//!   on first touch); routed by session name like any gateway request.
//! * `lca_stats` — no arguments; the fleet stats rollup.
//!
//! Tool results carry the backend's JSON response line as text content,
//! with `isError` set for protocol-level errors — an MCP host sees the
//! same typed error codes every other client does.

use serde::Json;

use crate::router::Fleet;

/// The MCP protocol revision this adapter implements.
pub const MCP_PROTOCOL_VERSION: &str = "2024-11-05";

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn s(text: &str) -> Json {
    Json::Str(text.to_owned())
}

/// A JSON-RPC response envelope around `body` (a `result` or `error`
/// pair), echoing `id`.
fn envelope(id: Json, key: &str, body: Json) -> String {
    let mut out = String::new();
    obj(vec![("jsonrpc", s("2.0")), ("id", id), (key, body)]).render(&mut out);
    out
}

fn rpc_error(id: Json, code: i64, message: &str) -> String {
    envelope(
        id,
        "error",
        obj(vec![
            ("code", Json::Num(code as f64)),
            ("message", s(message)),
        ]),
    )
}

/// A tool result: the response line as text content, `isError` for typed
/// protocol errors (MCP's convention: tool failures are results, not
/// JSON-RPC errors, so the model can read them).
fn tool_result(id: Json, line: &str, is_error: bool) -> String {
    envelope(
        id,
        "result",
        obj(vec![
            (
                "content",
                Json::Arr(vec![obj(vec![("type", s("text")), ("text", s(line))])]),
            ),
            ("isError", Json::Bool(is_error)),
        ]),
    )
}

/// The `tools/list` payload: both tool declarations with their input
/// schemas (mirrored in `docs/PROTOCOL.md`).
fn tools_json() -> Json {
    let query_schema = obj(vec![
        ("type", s("object")),
        (
            "properties",
            obj(vec![
                (
                    "session",
                    obj(vec![("type", s("string")), ("description", s("session name; routes to a backend by deterministic hash"))]),
                ),
                (
                    "query",
                    obj(vec![("type", s("integer")), ("description", s("vertex (classic kinds) — use u/v for spanner edge queries"))]),
                ),
                ("u", obj(vec![("type", s("integer"))])),
                ("v", obj(vec![("type", s("integer"))])),
                (
                    "kind",
                    obj(vec![("type", s("string")), ("description", s("mis | matching | spanner3 | spanner5 (spec; required on first touch)"))]),
                ),
                ("family", obj(vec![("type", s("string"))])),
                ("n", obj(vec![("type", s("integer"))])),
                ("seed", obj(vec![("type", s("integer"))])),
                ("knob", obj(vec![("type", s("number"))])),
                ("max_probes", obj(vec![("type", s("integer"))])),
                ("deadline_ms", obj(vec![("type", s("integer"))])),
            ]),
        ),
        ("required", Json::Arr(vec![s("session")])),
    ]);
    let stats_schema = obj(vec![("type", s("object")), ("properties", obj(vec![]))]);
    Json::Arr(vec![
        obj(vec![
            ("name", s("lca_query")),
            (
                "description",
                s("Query a local-computation-algorithm session (MIS, maximal matching, or spanner membership) served by the lca fleet. Answers are deterministic for a (kind, family, n, seed) spec."),
            ),
            ("inputSchema", query_schema),
        ]),
        obj(vec![
            ("name", s("lca_stats")),
            (
                "description",
                s("Fleet-wide serving statistics: per-backend snapshots plus the rollup (request counters, cache hit rates, routing histogram)."),
            ),
            ("inputSchema", stats_schema),
        ]),
    ])
}

/// Handles one stdin line; `None` means no response (a notification or
/// blank line).
pub fn handle_message(fleet: &Fleet, line: &str) -> Option<String> {
    let line = line.trim();
    if line.is_empty() {
        return None;
    }
    let Ok(message) = serde_json::from_str(line) else {
        return Some(rpc_error(Json::Null, -32700, "parse error"));
    };
    let id = message.get("id").cloned().unwrap_or(Json::Null);
    let method = message.get("method").and_then(Json::as_str).unwrap_or("");
    match method {
        "initialize" => Some(envelope(
            id,
            "result",
            obj(vec![
                ("protocolVersion", s(MCP_PROTOCOL_VERSION)),
                ("capabilities", obj(vec![("tools", obj(vec![]))])),
                (
                    "serverInfo",
                    obj(vec![
                        ("name", s("lca-mcp")),
                        ("version", s(env!("CARGO_PKG_VERSION"))),
                    ]),
                ),
            ]),
        )),
        "ping" => Some(envelope(id, "result", obj(vec![]))),
        "tools/list" => Some(envelope(id, "result", obj(vec![("tools", tools_json())]))),
        "tools/call" => {
            let params = message.get("params").cloned().unwrap_or(Json::Null);
            let name = params.get("name").and_then(Json::as_str).unwrap_or("");
            match name {
                "lca_query" => {
                    let arguments = params
                        .get("arguments")
                        .cloned()
                        .unwrap_or(Json::Obj(Vec::new()));
                    let mut body = String::new();
                    arguments.render(&mut body);
                    let reply = fleet.query(&body);
                    Some(tool_result(id, &reply.body, reply.status != 200))
                }
                "lca_stats" => {
                    let reply = fleet.stats();
                    Some(tool_result(id, &reply.body, reply.status != 200))
                }
                _ => Some(rpc_error(id, -32602, "unknown tool")),
            }
        }
        m if m.starts_with("notifications/") => None,
        _ => Some(rpc_error(id, -32601, "method not found")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet() -> Fleet {
        // An unreachable backend: tool plumbing is testable without one
        // because gateway-level errors short-circuit before dialing.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        drop(listener);
        Fleet::new(vec![addr])
    }

    #[test]
    fn initialize_and_tools_list_round_trip() {
        let fleet = fleet();
        let response = handle_message(
            &fleet,
            r#"{"jsonrpc":"2.0","id":1,"method":"initialize","params":{}}"#,
        )
        .expect("initialize answers");
        let parsed = serde_json::from_str(&response).unwrap();
        assert_eq!(parsed.get("id").and_then(Json::as_u64), Some(1));
        let result = parsed.get("result").expect("result");
        assert_eq!(
            result.get("protocolVersion").and_then(Json::as_str),
            Some(MCP_PROTOCOL_VERSION)
        );
        assert!(
            handle_message(
                &fleet,
                r#"{"jsonrpc":"2.0","method":"notifications/initialized"}"#
            )
            .is_none(),
            "notifications get no response"
        );
        let response = handle_message(&fleet, r#"{"jsonrpc":"2.0","id":2,"method":"tools/list"}"#)
            .expect("tools/list answers");
        let parsed = serde_json::from_str(&response).unwrap();
        let tools = parsed
            .get("result")
            .and_then(|r| r.get("tools"))
            .and_then(Json::as_array)
            .expect("tools array");
        let names: Vec<&str> = tools
            .iter()
            .filter_map(|t| t.get("name").and_then(Json::as_str))
            .collect();
        assert_eq!(names, vec!["lca_query", "lca_stats"]);
    }

    #[test]
    fn tool_errors_surface_as_is_error_results() {
        let fleet = fleet();
        // Missing session: the router's typed 400, delivered as an MCP
        // tool result with isError.
        let response = handle_message(
            &fleet,
            r#"{"jsonrpc":"2.0","id":3,"method":"tools/call","params":{"name":"lca_query","arguments":{"query":1}}}"#,
        )
        .expect("tools/call answers");
        let parsed = serde_json::from_str(&response).unwrap();
        let result = parsed.get("result").expect("result, not a JSON-RPC error");
        assert_eq!(result.get("isError").and_then(Json::as_bool), Some(true));
        let text = result
            .get("content")
            .and_then(Json::as_array)
            .and_then(|c| c.first())
            .and_then(|c| c.get("text"))
            .and_then(Json::as_str)
            .expect("text content");
        assert!(text.contains("bad-request"), "{text}");
        // Unknown tools and methods are JSON-RPC errors.
        let response = handle_message(
            &fleet,
            r#"{"jsonrpc":"2.0","id":4,"method":"tools/call","params":{"name":"nope"}}"#,
        )
        .unwrap();
        assert!(serde_json::from_str(&response)
            .unwrap()
            .get("error")
            .is_some());
        let response =
            handle_message(&fleet, r#"{"jsonrpc":"2.0","id":5,"method":"nope"}"#).unwrap();
        assert!(serde_json::from_str(&response)
            .unwrap()
            .get("error")
            .is_some());
    }
}
