#!/usr/bin/env python3
"""Trajectory gate: diff fresh BENCH_engine*.json snapshots against the
committed ones and fail on significant performance regressions.

Usage:
    trajectory_gate.py COMMITTED_DIR FRESH_DIR [--threshold 0.30]
                       [--files BENCH_engine.json BENCH_engine_serve.json]

The committed snapshots under bench-results/ are the performance
trajectory of the repo (qps, latency percentiles, probe percentiles,
exhaustion rates, one file per engine_report mode). This gate re-runs the
report in CI and compares metric-by-metric:

* qps-like metrics (higher is better) fail when the fresh value drops by
  more than the gate's threshold relative to the committed one;
* latency/probe percentiles (lower is better) fail when the fresh value
  grows by more than the threshold;
* tiny absolute values are exempt via per-metric noise floors (a p50 going
  from 3 µs to 5 µs is scheduler noise, not a regression);
* probe percentiles are deterministic for a fixed seed, so they gate at
  the tight --threshold — any drift there is an algorithmic change, which
  should be an intentional snapshot update, not an accident;
* qps and latency are wall-clock metrics: the committed snapshot was
  measured on whatever machine regenerated it last, and CI hardware
  differs, so they gate at --noisy-threshold (default: 2x --threshold).
  Set --noisy-threshold equal to --threshold when comparing runs from the
  same machine.

Improvements never fail the gate. To accept an intentional regression,
regenerate the snapshots (cargo run --release -p lca-bench --bin
engine_report [-- --serve|--implicit]) and commit the new files.
"""

import argparse
import json
import os
import sys

# metric name -> (direction, absolute noise floor on the *change*, class)
#   direction "up"    = higher is better (regression when it drops)
#   direction "down"  = lower is better (regression when it grows)
#   class "wallclock" = machine-dependent, gated at --noisy-threshold
#   class "exact"     = deterministic for a fixed seed, gated at --threshold
METRICS = {
    "qps": ("up", 0.0, "wallclock"),
    "latency_p50_us": ("down", 100.0, "wallclock"),
    "latency_p99_us": ("down", 250.0, "wallclock"),
    "p50_us": ("down", 100.0, "wallclock"),
    "p99_us": ("down", 250.0, "wallclock"),
    "mean_us": ("down", 100.0, "wallclock"),
    # Amortized wall time per issued probe over the serial serving pass
    # (engine_report trajectory rows). This is the probe pipeline's headline
    # number: bulk generation + buffered scans push it down, and a climb
    # means the hot loops started allocating or regenerating again. Pure
    # wall clock, so gated at the noisy threshold with a floor that absorbs
    # scheduler jitter on the cheap kinds.
    "ns_per_probe": ("down", 50.0, "wallclock"),
    "probes_p50": ("down", 4.0, "exact"),
    "probes_p99": ("down", 8.0, "exact"),
    # The HTTP tier's latency over the direct-TCP path (BENCH_engine_fleet):
    # both sides of the subtraction are wall-clock, so the delta is too.
    "gateway_overhead_p50_us": ("down", 100.0, "wallclock"),
    "gateway_overhead_p99_us": ("down", 250.0, "wallclock"),
    # The adaptive-budget headline (BENCH_engine_serve): the share of cold
    # tail traffic a p99-fitted budget still exhausts. The fit reacts to
    # wall-clock-free probe counts, but which requests land before the
    # first refit depends on thread interleaving — gate it as noisy.
    "adaptive_exhaustion_rate": ("down", 0.05, "wallclock"),
    # The serving hot path's write syscalls per response over the fan-in
    # window (BENCH_engine_serve). Batched drains + coalesced vectored
    # writes keep it near 1.0; a climb back toward one-write-per-response
    # means the coalescing regressed. The drain/flush schedule depends on
    # thread interleaving, so gate it as noisy with a small floor.
    "syscalls_per_response": ("down", 0.25, "wallclock"),
}


def leaf_metrics(committed, fresh, path=""):
    """Yield (path, key, committed_value, fresh_value) for every numeric
    leaf present in both trees, matching list entries of objects by their
    "algorithm" field when available (row order may change)."""
    if isinstance(committed, dict) and isinstance(fresh, dict):
        for key, value in committed.items():
            if key in fresh:
                yield from leaf_metrics(value, fresh[key], f"{path}.{key}" if path else key)
    elif isinstance(committed, list) and isinstance(fresh, list):
        by_algo = committed and all(
            isinstance(row, dict) and "algorithm" in row for row in committed
        )
        if by_algo:
            fresh_rows = {
                row.get("algorithm"): row for row in fresh if isinstance(row, dict)
            }
            for row in committed:
                match = fresh_rows.get(row["algorithm"])
                if match is not None:
                    yield from leaf_metrics(row, match, f"{path}[{row['algorithm']}]")
        else:
            for i, (a, b) in enumerate(zip(committed, fresh)):
                yield from leaf_metrics(a, b, f"{path}[{i}]")
    elif isinstance(committed, (int, float)) and isinstance(fresh, (int, float)):
        key = path.split(".")[-1].split("[")[0]
        yield (path, key, float(committed), float(fresh))


def gate_file(name, committed_dir, fresh_dir, threshold, noisy_threshold):
    """Returns (checked, regressions) for one snapshot file."""
    with open(os.path.join(committed_dir, name)) as f:
        committed = json.load(f)
    with open(os.path.join(fresh_dir, name)) as f:
        fresh = json.load(f)
    checked, regressions = 0, []
    for path, key, old, new in leaf_metrics(committed, fresh):
        if key not in METRICS:
            continue
        direction, floor, metric_class = METRICS[key]
        gate = threshold if metric_class == "exact" else noisy_threshold
        checked += 1
        if old <= 0:
            continue
        delta = (old - new) if direction == "up" else (new - old)
        rel = delta / old
        if rel > gate and delta > floor:
            arrow = "dropped" if direction == "up" else "grew"
            regressions.append(
                f"{name}:{path}: {key} {arrow} {old:.1f} -> {new:.1f} "
                f"({rel * 100.0:+.1f}% past the {gate * 100.0:.0f}% gate)"
            )
    return checked, regressions


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("committed_dir", help="directory with the committed snapshots")
    parser.add_argument("fresh_dir", help="directory with freshly generated snapshots")
    parser.add_argument("--threshold", type=float, default=0.30)
    parser.add_argument(
        "--noisy-threshold",
        type=float,
        default=None,
        help="gate for machine-dependent (qps/latency) metrics; "
        "default 2x --threshold — see the module docstring",
    )
    parser.add_argument(
        "--files",
        nargs="*",
        default=None,
        help="snapshot files to gate (default: every BENCH_engine*.json present in both dirs)",
    )
    args = parser.parse_args()
    noisy_threshold = (
        args.noisy_threshold if args.noisy_threshold is not None else 2.0 * args.threshold
    )

    files = args.files
    if files is None:
        files = sorted(
            name
            for name in os.listdir(args.committed_dir)
            if name.startswith("BENCH_engine") and name.endswith(".json")
            and os.path.exists(os.path.join(args.fresh_dir, name))
        )
    if not files:
        print("trajectory gate: no snapshot files to compare", file=sys.stderr)
        return 1

    total_checked, total_regressions = 0, []
    for name in files:
        checked, regressions = gate_file(
            name, args.committed_dir, args.fresh_dir, args.threshold, noisy_threshold
        )
        print(f"trajectory gate: {name}: {checked} metrics checked, "
              f"{len(regressions)} regressions")
        total_checked += checked
        total_regressions.extend(regressions)

    if total_checked == 0:
        print("trajectory gate: no gated metrics found — snapshot schema drifted?",
              file=sys.stderr)
        return 1
    for line in total_regressions:
        print(f"REGRESSION {line}", file=sys.stderr)
    if total_regressions:
        print(
            f"trajectory gate: FAILED ({len(total_regressions)} regressions over "
            f"{total_checked} metrics). Intentional? Regenerate and commit the snapshots.",
            file=sys.stderr,
        )
        return 1
    print(
        f"trajectory gate: ok ({total_checked} metrics; exact within "
        f"{args.threshold * 100.0:.0f}%, wall-clock within {noisy_threshold * 100.0:.0f}%)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
