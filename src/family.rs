//! The implicit-family registry: named, enumerable construction of
//! generator-backed oracles.
//!
//! [`AlgorithmKind`](crate::registry::AlgorithmKind) names *algorithms*;
//! [`ImplicitFamily`] names *inputs* — the `lca_graph::implicit` families —
//! so a wire protocol or CLI can pin an instance with four scalars:
//! `(family, n, seed, algorithm kind)`. Every family builds from the same
//! `(n, seed)` shape; family-specific shape parameters (the expected degree
//! of G(n, c/n), the degree of the regular family, …) default to the values
//! below and can be overridden with one knob, [`ImplicitFamily::build_with`].
//!
//! ```
//! use lca::family::ImplicitFamily;
//! use lca::prelude::*;
//!
//! let oracle = ImplicitFamily::Gnp.build(1_000_000, Seed::new(7));
//! assert_eq!(oracle.family(), "implicit-gnp");
//! let mis = LcaBuilder::new(AlgorithmKind::Classic(ClassicKind::Mis)).build(&oracle);
//! let v = lca::graph::VertexId::new(123_456);
//! mis.query(lca::core::DynQuery::Vertex(v)).unwrap();
//! ```

use lca_graph::implicit::{
    ImplicitChungLu, ImplicitGnp, ImplicitGrid, ImplicitHypercube, ImplicitOracle, ImplicitRegular,
    ImplicitTorus,
};
use lca_rand::Seed;

/// A boxed implicit oracle, shareable across serving threads.
pub type BoxedImplicitOracle = Box<dyn ImplicitOracle + Send + Sync>;

/// The generator-backed input families of `lca_graph::implicit`, as an
/// enumerable registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ImplicitFamily {
    /// [`ImplicitGnp`] — sparse G(n, c/n)-style; knob = expected degree `c`
    /// (default 4).
    Gnp,
    /// [`ImplicitRegular`] — random d-regular; knob = degree `d` (default 8).
    Regular,
    /// [`ImplicitChungLu`] — power-law Chung–Lu with exponent 2.5;
    /// knob = average degree (default 5).
    ChungLu,
    /// [`ImplicitGrid`] — a near-square rows × cols grid; no knob, no seed
    /// dependence.
    Grid,
    /// [`ImplicitTorus`] — the wrap-around grid; no knob, no seed dependence.
    Torus,
    /// [`ImplicitHypercube`] — dimension ⌊log₂ n⌋; no knob, no seed
    /// dependence.
    Hypercube,
}

impl ImplicitFamily {
    /// Enumerates every registered family.
    pub fn all() -> [ImplicitFamily; 6] {
        [
            ImplicitFamily::Gnp,
            ImplicitFamily::Regular,
            ImplicitFamily::ChungLu,
            ImplicitFamily::Grid,
            ImplicitFamily::Torus,
            ImplicitFamily::Hypercube,
        ]
    }

    /// The registered name, matching [`ImplicitOracle::family`] of the built
    /// oracle.
    pub fn name(self) -> &'static str {
        match self {
            ImplicitFamily::Gnp => "implicit-gnp",
            ImplicitFamily::Regular => "implicit-regular",
            ImplicitFamily::ChungLu => "implicit-chung-lu",
            ImplicitFamily::Grid => "implicit-grid",
            ImplicitFamily::Torus => "implicit-torus",
            ImplicitFamily::Hypercube => "implicit-hypercube",
        }
    }

    /// Parses a family name as written by humans and wire protocols: the
    /// registered name with or without the `implicit-` prefix,
    /// case-insensitively, plus `chung_lu`/`chunglu` spellings.
    ///
    /// ```
    /// use lca::family::ImplicitFamily;
    ///
    /// assert_eq!(ImplicitFamily::parse("gnp"), Some(ImplicitFamily::Gnp));
    /// assert_eq!(
    ///     ImplicitFamily::parse("implicit-chung-lu"),
    ///     Some(ImplicitFamily::ChungLu)
    /// );
    /// assert_eq!(ImplicitFamily::parse("petersen"), None);
    /// ```
    pub fn parse(name: &str) -> Option<ImplicitFamily> {
        let lower = name.to_ascii_lowercase();
        let bare = lower.strip_prefix("implicit-").unwrap_or(&lower);
        let family = match bare {
            "gnp" => ImplicitFamily::Gnp,
            "regular" => ImplicitFamily::Regular,
            "chung-lu" | "chung_lu" | "chunglu" => ImplicitFamily::ChungLu,
            "grid" => ImplicitFamily::Grid,
            "torus" => ImplicitFamily::Torus,
            "hypercube" => ImplicitFamily::Hypercube,
            _ => return None,
        };
        Some(family)
    }

    /// Builds the family's oracle at (approximately) `n` vertices with the
    /// default shape knob — see [`ImplicitFamily::build_with`].
    pub fn build(self, n: usize, seed: Seed) -> BoxedImplicitOracle {
        self.build_with(n, seed, None)
    }

    /// Builds the family's oracle with an explicit shape knob.
    ///
    /// `knob` means: expected degree `c` for [`ImplicitFamily::Gnp`], degree
    /// `d` for [`ImplicitFamily::Regular`] (rounded), average degree for
    /// [`ImplicitFamily::ChungLu`]; it is ignored by the closed-form lattice
    /// families, whose shape is fully determined by `n`.
    ///
    /// The lattice families round `n` to the nearest realizable size: grids
    /// and tori use the most-square `rows × cols ≤ n` factorization with
    /// `rows = ⌊√n⌋`, the hypercube uses dimension `⌊log₂ n⌋`. Check
    /// `vertex_count()` on the result rather than assuming `n`.
    pub fn build_with(self, n: usize, seed: Seed, knob: Option<f64>) -> BoxedImplicitOracle {
        match self {
            ImplicitFamily::Gnp => Box::new(ImplicitGnp::new(n, knob.unwrap_or(4.0), seed)),
            ImplicitFamily::Regular => {
                let d = knob.unwrap_or(8.0).max(1.0).round() as usize;
                Box::new(ImplicitRegular::new(n, d, seed))
            }
            ImplicitFamily::ChungLu => Box::new(ImplicitChungLu::power_law(
                n,
                2.5,
                knob.unwrap_or(5.0),
                seed,
            )),
            ImplicitFamily::Grid => {
                let (rows, cols) = near_square(n);
                Box::new(ImplicitGrid::new(rows, cols))
            }
            ImplicitFamily::Torus => {
                let (rows, cols) = near_square(n);
                Box::new(ImplicitTorus::new(rows, cols))
            }
            ImplicitFamily::Hypercube => Box::new(ImplicitHypercube::new(log2_floor(n))),
        }
    }
}

impl std::fmt::Display for ImplicitFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The most-square `rows × cols` with `rows = ⌊√n⌋` and `rows × cols ≤ n`
/// (at least 1×1).
fn near_square(n: usize) -> (usize, usize) {
    let n = n.max(1);
    let rows = (n as f64).sqrt().floor() as usize;
    let rows = rows.max(1);
    (rows, n / rows)
}

/// `⌊log₂ n⌋`, with `n = 0` treated as dimension 0.
fn log2_floor(n: usize) -> u32 {
    if n <= 1 {
        0
    } else {
        usize::BITS - 1 - n.leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lca_graph::Oracle;

    #[test]
    fn names_round_trip_for_every_family() {
        for family in ImplicitFamily::all() {
            assert_eq!(ImplicitFamily::parse(family.name()), Some(family));
            // The bare name (without the implicit- prefix) parses too.
            let bare = family.name().strip_prefix("implicit-").unwrap();
            assert_eq!(ImplicitFamily::parse(bare), Some(family), "{bare}");
            // And the built oracle reports the registered family string.
            let oracle = family.build(256, Seed::new(1));
            assert_eq!(oracle.family(), family.name());
        }
        assert_eq!(ImplicitFamily::parse(""), None);
        assert_eq!(ImplicitFamily::parse("implicit-"), None);
    }

    #[test]
    fn parse_is_case_insensitive() {
        assert_eq!(ImplicitFamily::parse("GNP"), Some(ImplicitFamily::Gnp));
        assert_eq!(
            ImplicitFamily::parse("Implicit-Chung_Lu"),
            Some(ImplicitFamily::ChungLu)
        );
    }

    #[test]
    fn built_sizes_are_near_n() {
        for family in ImplicitFamily::all() {
            let oracle = family.build(10_000, Seed::new(2));
            let n = oracle.vertex_count();
            assert!(
                (8_192..=10_000).contains(&n),
                "{family}: built {n} vertices for requested 10000"
            );
        }
    }

    #[test]
    fn knob_controls_shape() {
        let sparse = ImplicitFamily::Regular.build_with(1_000, Seed::new(3), Some(2.0));
        let dense = ImplicitFamily::Regular.build_with(1_000, Seed::new(3), Some(12.0));
        let deg = |o: &BoxedImplicitOracle| {
            (0..100)
                .map(|v| o.degree(lca_graph::VertexId::new(v)))
                .sum::<usize>()
        };
        assert!(deg(&dense) > deg(&sparse));
    }

    #[test]
    fn helpers_handle_degenerate_sizes() {
        assert_eq!(near_square(0), (1, 1));
        assert_eq!(near_square(12), (3, 4));
        assert_eq!(log2_floor(0), 0);
        assert_eq!(log2_floor(1), 0);
        assert_eq!(log2_floor(1 << 20), 20);
    }
}
