//! Query sources: where a batch of queries comes from.
//!
//! Before implicit oracles, every harness derived its query set from a
//! materialized [`Graph`](lca_graph::Graph) (`graph.edges()`,
//! `graph.vertices()`). A [`QuerySource`] abstracts that step so a batch can
//! be drawn from *any* [`Oracle`] — including a generator-backed implicit
//! one where enumerating all edges is exactly the O(n) sweep the model
//! forbids. Exhaustive enumeration stays available for materializable
//! inputs; sampling works at any scale, at O(1) probes per drawn query.

use lca_core::{DynQuery, QueryKind};
use lca_graph::Oracle;
use lca_rand::Seed;

use crate::registry::AlgorithmKind;

/// A recipe for producing the query batch of an algorithm over an oracle.
///
/// # Example
///
/// ```
/// use lca::prelude::*;
/// use lca::graph::implicit::ImplicitGnp;
///
/// // One billion vertices: no Graph, no problem.
/// let oracle = ImplicitGnp::new(1_000_000_000, 3.0, Seed::new(1));
/// let kind = AlgorithmKind::Classic(ClassicKind::Mis);
/// let queries = QuerySource::sample(64, Seed::new(2)).queries(kind, &oracle);
/// assert_eq!(queries.len(), 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuerySource {
    /// Every query the input supports: all vertices for vertex-subset
    /// algorithms, all edges for edge-subgraph ones. Edge enumeration scans
    /// every adjacency list through probes — O(n + Σ deg) — so this is for
    /// materializable sizes only.
    Exhaustive,
    /// `count` queries sampled through O(1) probes each: uniform vertices,
    /// or edges drawn by picking a uniform vertex and a uniform position in
    /// its adjacency list (edge-sampling is therefore degree-biased, the
    /// natural "what will production queries look like" distribution — a
    /// high-degree endpoint is touched by more edges).
    Sample {
        /// Number of queries to draw (with replacement).
        count: usize,
        /// Sampling seed, independent of the algorithm seed.
        seed: Seed,
    },
}

impl QuerySource {
    /// Shorthand for [`QuerySource::Sample`].
    pub fn sample(count: usize, seed: Seed) -> Self {
        QuerySource::Sample { count, seed }
    }

    /// Produces the query batch for `kind` over `oracle`.
    ///
    /// Sampled edge queries are normalized to `(min, max)` endpoint order
    /// and skip isolated vertices by rejection; a pathological input with
    /// almost no edges may yield fewer than `count` edge queries (the
    /// rejection budget is `64 × count` attempts, so an empty result on a
    /// non-degenerate graph indicates a broken oracle, not bad luck).
    pub fn queries<O: Oracle>(self, kind: AlgorithmKind, oracle: &O) -> Vec<DynQuery> {
        match (self, kind.query_kind()) {
            (QuerySource::Exhaustive, QueryKind::Vertex) => (0..oracle.vertex_count())
                .map(|v| DynQuery::Vertex(lca_graph::VertexId::new(v)))
                .collect(),
            (QuerySource::Exhaustive, QueryKind::Edge) => {
                let mut out = Vec::new();
                for u in 0..oracle.vertex_count() {
                    let u = lca_graph::VertexId::new(u);
                    let mut i = 0;
                    while let Some(w) = oracle.neighbor(u, i) {
                        if u < w {
                            out.push(DynQuery::Edge(u, w));
                        }
                        i += 1;
                    }
                }
                out
            }
            (QuerySource::Sample { count, seed }, QueryKind::Vertex) => {
                let n = oracle.vertex_count();
                if n == 0 {
                    return Vec::new();
                }
                let mut rng = seed.derive(0x5153_5243).stream();
                (0..count)
                    .map(|_| {
                        DynQuery::Vertex(
                            lca_graph::VertexId::new(rng.next_below(n as u64) as usize),
                        )
                    })
                    .collect()
            }
            (QuerySource::Sample { count, seed }, QueryKind::Edge) => {
                let n = oracle.vertex_count();
                if n == 0 {
                    return Vec::new();
                }
                let mut rng = seed.derive(0x5153_5245).stream();
                let mut out = Vec::with_capacity(count);
                let mut attempts = 0usize;
                while out.len() < count && attempts < count.saturating_mul(64) {
                    attempts += 1;
                    let v = lca_graph::VertexId::new(rng.next_below(n as u64) as usize);
                    let d = oracle.degree(v);
                    if d == 0 {
                        continue;
                    }
                    let i = rng.next_below(d as u64) as usize;
                    let Some(w) = oracle.neighbor(v, i) else {
                        continue;
                    };
                    let (a, b) = if v < w { (v, w) } else { (w, v) };
                    out.push(DynQuery::Edge(a, b));
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ClassicKind;
    use crate::registry::SpannerKind;
    use lca_graph::gen::GnpBuilder;
    use lca_graph::implicit::{ImplicitGnp, ImplicitOracle};

    #[test]
    fn exhaustive_matches_graph_enumeration() {
        let g = GnpBuilder::new(60, 0.2).seed(Seed::new(1)).build();
        let kind = AlgorithmKind::Spanner(SpannerKind::Three);
        let from_source: std::collections::HashSet<_> = QuerySource::Exhaustive
            .queries(kind, &g)
            .into_iter()
            .collect();
        let from_graph: std::collections::HashSet<_> = kind.queries(&g).into_iter().collect();
        assert_eq!(from_source, from_graph);

        let verts = QuerySource::Exhaustive.queries(AlgorithmKind::Classic(ClassicKind::Mis), &g);
        assert_eq!(verts.len(), 60);
    }

    #[test]
    fn sampled_edges_are_real_edges_of_the_implicit_graph() {
        let oracle = ImplicitGnp::new(5_000, 4.0, Seed::new(2));
        let g = oracle.materialize();
        let queries = QuerySource::sample(100, Seed::new(3))
            .queries(AlgorithmKind::Spanner(SpannerKind::Three), &oracle);
        assert_eq!(queries.len(), 100);
        for q in queries {
            let DynQuery::Edge(u, v) = q else {
                panic!("expected edge query")
            };
            assert!(u < v, "not normalized");
            assert!(g.has_edge(u, v), "sampled non-edge {u}-{v}");
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let oracle = ImplicitGnp::new(10_000, 3.0, Seed::new(4));
        let kind = AlgorithmKind::Classic(ClassicKind::Mis);
        let a = QuerySource::sample(50, Seed::new(5)).queries(kind, &oracle);
        let b = QuerySource::sample(50, Seed::new(5)).queries(kind, &oracle);
        let c = QuerySource::sample(50, Seed::new(6)).queries(kind, &oracle);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn empty_inputs_yield_empty_batches() {
        let g = lca_graph::GraphBuilder::new(0).build().unwrap();
        for kind in [
            AlgorithmKind::Classic(ClassicKind::Mis),
            AlgorithmKind::Spanner(SpannerKind::Three),
        ] {
            assert!(QuerySource::Exhaustive.queries(kind, &g).is_empty());
            assert!(QuerySource::sample(10, Seed::new(1))
                .queries(kind, &g)
                .is_empty());
        }
        // Edgeless but non-empty: edge sampling gives up gracefully.
        let iso = lca_graph::GraphBuilder::new(5).build().unwrap();
        let edges = QuerySource::sample(10, Seed::new(1))
            .queries(AlgorithmKind::Spanner(SpannerKind::Three), &iso);
        assert!(edges.is_empty());
    }
}
