//! Algorithm registry and uniform construction.
//!
//! Every LCA in the workspace — three spanners and four classic algorithms —
//! is registered here under an [`AlgorithmKind`], constructible from
//! `(oracle, kind, seed)` through [`LcaBuilder`] (or a typed [`LcaConfig`]),
//! and served behind one object type, [`DynLca`], that answers type-erased
//! [`DynQuery`] batches through the [`QueryEngine`](lca_core::QueryEngine).
//!
//! ```
//! use lca::registry::{AlgorithmKind, LcaBuilder};
//! use lca::prelude::*;
//!
//! let graph = GnpBuilder::new(120, 0.2).seed(Seed::new(1)).build();
//! for kind in AlgorithmKind::all() {
//!     let algo = LcaBuilder::new(kind).seed(Seed::new(7)).build(&graph);
//!     let queries = kind.queries(&graph);
//!     let answers = QueryEngine::new().query_batch(&algo, &queries);
//!     assert!(answers.iter().all(|a| a.is_ok()), "{}", algo.name());
//! }
//! ```

use lca_classic::{ColoringLca, MatchingLca, MisLca, VertexCoverLca};
use lca_core::{
    DynEdgeLca, DynQuery, DynVertexLca, EdgeSubgraphLca, FiveSpanner, FiveSpannerParams, K2Params,
    K2Spanner, Lca, QueryBudget, QueryKind, ThreeSpanner, ThreeSpannerParams, WithBudget,
};
// `Oracle` lives in `lca-graph` since the implicit-oracle work; `lca-probe`
// re-exports it unchanged for the accounting wrappers.
use lca_graph::{Graph, Oracle};
use lca_rand::Seed;

use crate::source::QuerySource;

/// The spanner constructions of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpannerKind {
    /// [`ThreeSpanner`] — stretch 3, Õ(n^{3/4}) probes (Thm 1.1, r = 2).
    Three,
    /// [`FiveSpanner`] — stretch 5, Õ(n^{5/6}) probes (Thm 1.1, r = 3).
    Five,
    /// [`K2Spanner`] — stretch O(k²) on bounded degree (Thm 1.2).
    K2,
}

/// The classic vertex-subset LCAs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClassicKind {
    /// [`MisLca`] — maximal independent set.
    Mis,
    /// [`MatchingLca`] — maximal matching ("is `v` matched?").
    Matching,
    /// [`VertexCoverLca`] — 2-approximate vertex cover.
    VertexCover,
    /// [`ColoringLca`] — greedy (∆+1)-coloring (class-0 membership).
    Coloring,
}

/// Every algorithm the registry can construct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgorithmKind {
    /// A spanner LCA (edge-subgraph queries).
    Spanner(SpannerKind),
    /// A classic LCA (vertex-subset queries).
    Classic(ClassicKind),
}

impl AlgorithmKind {
    /// Enumerates all registered algorithms, spanners first.
    pub fn all() -> [AlgorithmKind; 7] {
        [
            AlgorithmKind::Spanner(SpannerKind::Three),
            AlgorithmKind::Spanner(SpannerKind::Five),
            AlgorithmKind::Spanner(SpannerKind::K2),
            AlgorithmKind::Classic(ClassicKind::Mis),
            AlgorithmKind::Classic(ClassicKind::Matching),
            AlgorithmKind::Classic(ClassicKind::VertexCover),
            AlgorithmKind::Classic(ClassicKind::Coloring),
        ]
    }

    /// The registered name, matching [`Lca::name`] of the built instance.
    pub fn name(self) -> &'static str {
        match self {
            AlgorithmKind::Spanner(SpannerKind::Three) => "three-spanner",
            AlgorithmKind::Spanner(SpannerKind::Five) => "five-spanner",
            AlgorithmKind::Spanner(SpannerKind::K2) => "k2-spanner",
            AlgorithmKind::Classic(ClassicKind::Mis) => "mis",
            AlgorithmKind::Classic(ClassicKind::Matching) => "maximal-matching",
            AlgorithmKind::Classic(ClassicKind::VertexCover) => "vertex-cover",
            AlgorithmKind::Classic(ClassicKind::Coloring) => "greedy-coloring",
        }
    }

    /// Looks an algorithm up by its registered name.
    pub fn from_name(name: &str) -> Option<AlgorithmKind> {
        AlgorithmKind::all().into_iter().find(|k| k.name() == name)
    }

    /// Parses an algorithm name as written by humans and wire protocols:
    /// the registered [`AlgorithmKind::name`] plus the short aliases below,
    /// case-insensitively.
    ///
    /// | kind | accepted spellings |
    /// |------|--------------------|
    /// | 3-spanner | `three-spanner`, `spanner3`, `three` |
    /// | 5-spanner | `five-spanner`, `spanner5`, `five` |
    /// | O(k²)-spanner | `k2-spanner`, `spanner-k2`, `k2` |
    /// | MIS | `mis` |
    /// | maximal matching | `maximal-matching`, `matching` |
    /// | vertex cover | `vertex-cover`, `vc` |
    /// | coloring | `greedy-coloring`, `coloring` |
    ///
    /// ```
    /// use lca::registry::{AlgorithmKind, ClassicKind, SpannerKind};
    ///
    /// let mis = AlgorithmKind::parse("mis").unwrap();
    /// assert_eq!(mis, AlgorithmKind::Classic(ClassicKind::Mis));
    /// let s3 = AlgorithmKind::parse("Spanner3").unwrap();
    /// assert_eq!(s3, AlgorithmKind::Spanner(SpannerKind::Three));
    /// assert!(AlgorithmKind::parse("nope").is_none());
    /// ```
    pub fn parse(name: &str) -> Option<AlgorithmKind> {
        let lower = name.to_ascii_lowercase();
        let kind = match lower.as_str() {
            "three-spanner" | "spanner3" | "three" => AlgorithmKind::Spanner(SpannerKind::Three),
            "five-spanner" | "spanner5" | "five" => AlgorithmKind::Spanner(SpannerKind::Five),
            "k2-spanner" | "spanner-k2" | "k2" => AlgorithmKind::Spanner(SpannerKind::K2),
            "mis" => AlgorithmKind::Classic(ClassicKind::Mis),
            "maximal-matching" | "matching" => AlgorithmKind::Classic(ClassicKind::Matching),
            "vertex-cover" | "vc" => AlgorithmKind::Classic(ClassicKind::VertexCover),
            "greedy-coloring" | "coloring" => AlgorithmKind::Classic(ClassicKind::Coloring),
            _ => return None,
        };
        Some(kind)
    }

    /// The query shape the algorithm serves.
    pub fn query_kind(self) -> QueryKind {
        match self {
            AlgorithmKind::Spanner(_) => QueryKind::Edge,
            AlgorithmKind::Classic(_) => QueryKind::Vertex,
        }
    }

    /// The full query set of this algorithm on `graph`: every edge for
    /// spanners, every vertex for classic LCAs.
    ///
    /// Requires a materialized [`Graph`]; to draw queries from *any* oracle
    /// (in particular an implicit one), use [`AlgorithmKind::queries_from`]
    /// with a [`QuerySource`].
    pub fn queries(self, graph: &Graph) -> Vec<DynQuery> {
        match self.query_kind() {
            QueryKind::Edge => graph.edges().map(|(u, v)| DynQuery::Edge(u, v)).collect(),
            QueryKind::Vertex => graph.vertices().map(DynQuery::Vertex).collect(),
        }
    }

    /// The query batch drawn from an arbitrary [`Oracle`] through a
    /// [`QuerySource`] — the no-`Graph` generalization of
    /// [`AlgorithmKind::queries`].
    pub fn queries_from<O: Oracle>(self, oracle: &O, source: QuerySource) -> Vec<DynQuery> {
        source.queries(self, oracle)
    }
}

impl std::fmt::Display for AlgorithmKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A registry-built algorithm: one object type answering [`DynQuery`]s,
/// shareable across the [`QueryEngine`](lca_core::QueryEngine)'s workers.
pub type DynLca<'a> = Box<dyn Lca<Query = DynQuery, Answer = bool> + Send + Sync + 'a>;

/// A registry-built spanner behind the edge-subgraph interface (for
/// harnesses that need [`EdgeSubgraphLca::stretch_bound`] or
/// [`lca_core::measure_queries`]).
pub type DynSpanner<'a> = Box<dyn EdgeSubgraphLca + Send + Sync + 'a>;

/// Typed construction parameters: which algorithm, which seed, and optional
/// per-kind parameter overrides (paper defaults otherwise).
#[derive(Debug, Clone)]
pub struct LcaConfig {
    /// Which algorithm to construct.
    pub kind: AlgorithmKind,
    /// The shared seed fixing the global solution.
    pub seed: Seed,
    /// Stretch parameter for [`SpannerKind::K2`] (default 2).
    pub k: usize,
    /// Override for the 3-spanner parameters.
    pub three: Option<ThreeSpannerParams>,
    /// Override for the 5-spanner parameters.
    pub five: Option<FiveSpannerParams>,
    /// Override for the O(k²)-spanner parameters (takes precedence over
    /// [`LcaConfig::k`]).
    pub k2: Option<K2Params>,
    /// Default per-query budget of the built instance (unlimited by
    /// default). Plain `query()` calls run under it; an explicit
    /// `query_ctx` context always wins.
    pub budget: QueryBudget,
}

impl LcaConfig {
    /// A config with paper-default parameters.
    pub fn new(kind: AlgorithmKind, seed: Seed) -> Self {
        Self {
            kind,
            seed,
            k: 2,
            three: None,
            five: None,
            k2: None,
            budget: QueryBudget::unlimited(),
        }
    }

    fn three_params(&self, n: usize) -> ThreeSpannerParams {
        self.three
            .clone()
            .unwrap_or_else(|| ThreeSpannerParams::for_n(n))
    }

    fn five_params(&self, n: usize) -> FiveSpannerParams {
        self.five
            .clone()
            .unwrap_or_else(|| FiveSpannerParams::for_n(n))
    }

    fn k2_params(&self, n: usize) -> K2Params {
        self.k2
            .clone()
            .unwrap_or_else(|| K2Params::for_n(n, self.k))
    }

    /// Constructs the configured algorithm over `oracle`.
    ///
    /// The oracle is taken by value; pass a reference (`&graph`,
    /// `&counting_oracle`) to share one across instances. `Clone` is
    /// required by the vertex-cover construction and trivially satisfied by
    /// references.
    pub fn build<'o, O>(&self, oracle: O) -> DynLca<'o>
    where
        O: Oracle + Clone + Send + Sync + 'o,
    {
        let algo = self.build_raw(oracle);
        if self.budget.is_unlimited() {
            algo
        } else {
            Box::new(WithBudget::new(algo, self.budget.clone()))
        }
    }

    fn build_raw<'o, O>(&self, oracle: O) -> DynLca<'o>
    where
        O: Oracle + Clone + Send + Sync + 'o,
    {
        let n = oracle.vertex_count();
        match self.kind {
            AlgorithmKind::Spanner(SpannerKind::Three) => Box::new(DynEdgeLca(ThreeSpanner::new(
                oracle,
                self.three_params(n),
                self.seed,
            ))),
            AlgorithmKind::Spanner(SpannerKind::Five) => Box::new(DynEdgeLca(FiveSpanner::new(
                oracle,
                self.five_params(n),
                self.seed,
            ))),
            AlgorithmKind::Spanner(SpannerKind::K2) => Box::new(DynEdgeLca(K2Spanner::new(
                oracle,
                self.k2_params(n),
                self.seed,
            ))),
            AlgorithmKind::Classic(ClassicKind::Mis) => {
                Box::new(DynVertexLca(MisLca::new(oracle, self.seed)))
            }
            AlgorithmKind::Classic(ClassicKind::Matching) => {
                Box::new(DynVertexLca(MatchingLca::new(oracle, self.seed)))
            }
            AlgorithmKind::Classic(ClassicKind::VertexCover) => {
                Box::new(DynVertexLca(VertexCoverLca::new(oracle, self.seed)))
            }
            AlgorithmKind::Classic(ClassicKind::Coloring) => {
                Box::new(DynVertexLca(ColoringLca::new(oracle, self.seed)))
            }
        }
    }

    /// Constructs the configured algorithm behind the [`EdgeSubgraphLca`]
    /// interface; `None` for classic (vertex-query) algorithms.
    pub fn build_spanner<'o, O>(&self, oracle: O) -> Option<DynSpanner<'o>>
    where
        O: Oracle + Clone + Send + Sync + 'o,
    {
        let n = oracle.vertex_count();
        let spanner: DynSpanner<'o> = match self.kind {
            AlgorithmKind::Spanner(SpannerKind::Three) => {
                Box::new(ThreeSpanner::new(oracle, self.three_params(n), self.seed))
            }
            AlgorithmKind::Spanner(SpannerKind::Five) => {
                Box::new(FiveSpanner::new(oracle, self.five_params(n), self.seed))
            }
            AlgorithmKind::Spanner(SpannerKind::K2) => {
                Box::new(K2Spanner::new(oracle, self.k2_params(n), self.seed))
            }
            AlgorithmKind::Classic(_) => return None,
        };
        Some(if self.budget.is_unlimited() {
            spanner
        } else {
            Box::new(WithBudget::new(spanner, self.budget.clone()))
        })
    }
}

/// Fluent construction of any registered algorithm.
///
/// ```
/// use lca::registry::{AlgorithmKind, ClassicKind, LcaBuilder};
/// use lca::prelude::*;
///
/// let g = GnpBuilder::new(60, 0.1).seed(Seed::new(3)).build();
/// let mis = LcaBuilder::new(AlgorithmKind::Classic(ClassicKind::Mis))
///     .seed(Seed::new(9))
///     .build(&g);
/// let v = lca::graph::VertexId::new(0);
/// let _in_mis = mis.query(lca::core::DynQuery::Vertex(v)).unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct LcaBuilder {
    config: LcaConfig,
}

impl LcaBuilder {
    /// Starts a builder for `kind` with seed 0 and paper-default parameters.
    pub fn new(kind: AlgorithmKind) -> Self {
        Self {
            config: LcaConfig::new(kind, Seed::new(0)),
        }
    }

    /// Sets the seed fixing the global solution.
    pub fn seed(mut self, seed: Seed) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the stretch parameter `k` for [`SpannerKind::K2`].
    pub fn k(mut self, k: usize) -> Self {
        self.config.k = k;
        self
    }

    /// Overrides the 3-spanner parameters.
    pub fn three_params(mut self, p: ThreeSpannerParams) -> Self {
        self.config.three = Some(p);
        self
    }

    /// Overrides the 5-spanner parameters.
    pub fn five_params(mut self, p: FiveSpannerParams) -> Self {
        self.config.five = Some(p);
        self
    }

    /// Overrides the O(k²)-spanner parameters.
    pub fn k2_params(mut self, p: K2Params) -> Self {
        self.config.k2 = Some(p);
        self
    }

    /// Caps every plain `query()` of the built instance at `n` probes —
    /// over-budget queries return
    /// [`LcaError::BudgetExhausted`](lca_core::LcaError::BudgetExhausted)
    /// instead of running long. Explicit `query_ctx` contexts still win.
    pub fn max_probes(mut self, n: u64) -> Self {
        self.config.budget.max_probes = Some(n);
        self
    }

    /// Adds a per-query wall-clock allowance to the default budget.
    pub fn query_timeout(mut self, timeout: std::time::Duration) -> Self {
        self.config.budget.timeout = Some(timeout);
        self
    }

    /// Replaces the whole default [`QueryBudget`].
    pub fn budget(mut self, budget: QueryBudget) -> Self {
        self.config.budget = budget;
        self
    }

    /// The accumulated typed config.
    pub fn config(&self) -> &LcaConfig {
        &self.config
    }

    /// Builds the algorithm over `oracle` (see [`LcaConfig::build`]).
    pub fn build<'o, O>(&self, oracle: O) -> DynLca<'o>
    where
        O: Oracle + Clone + Send + Sync + 'o,
    {
        self.config.build(oracle)
    }

    /// Builds a spanner behind [`EdgeSubgraphLca`]; `None` for classic
    /// kinds (see [`LcaConfig::build_spanner`]).
    pub fn build_spanner<'o, O>(&self, oracle: O) -> Option<DynSpanner<'o>>
    where
        O: Oracle + Clone + Send + Sync + 'o,
    {
        self.config.build_spanner(oracle)
    }

    /// The query batch for this builder's algorithm, drawn from any oracle
    /// through a [`QuerySource`] — no materialized `Graph` required.
    ///
    /// ```
    /// use lca::prelude::*;
    /// use lca::graph::implicit::ImplicitGnp;
    ///
    /// let oracle = ImplicitGnp::new(100_000_000, 4.0, Seed::new(1));
    /// let builder = LcaBuilder::new(AlgorithmKind::Classic(ClassicKind::Mis));
    /// let queries = builder.queries(&oracle, QuerySource::sample(16, Seed::new(2)));
    /// let mis = builder.build(&oracle);
    /// let answers = QueryEngine::new().query_batch(&mis, &queries);
    /// assert!(answers.iter().all(|a| a.is_ok()));
    /// ```
    pub fn queries<O: Oracle>(&self, oracle: &O, source: QuerySource) -> Vec<DynQuery> {
        source.queries(self.config.kind, oracle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lca_core::LcaError;
    use lca_graph::gen::{GnpBuilder, RegularBuilder};
    use lca_graph::VertexId;

    #[test]
    fn all_seven_algorithms_are_registered_with_unique_names() {
        let kinds = AlgorithmKind::all();
        assert_eq!(kinds.len(), 7);
        let names: std::collections::HashSet<_> = kinds.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), 7);
        for kind in kinds {
            assert_eq!(AlgorithmKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(AlgorithmKind::from_name("nope"), None);
    }

    #[test]
    fn parse_round_trips_every_registered_name() {
        for kind in AlgorithmKind::all() {
            // The canonical name parses back to the same kind…
            assert_eq!(AlgorithmKind::parse(kind.name()), Some(kind));
            // …case-insensitively…
            assert_eq!(
                AlgorithmKind::parse(&kind.name().to_ascii_uppercase()),
                Some(kind)
            );
            // …and a registry build from the parsed kind reports the name
            // we started from (full round trip through construction).
            let g = GnpBuilder::new(40, 0.2).seed(Seed::new(11)).build();
            let algo = LcaBuilder::new(AlgorithmKind::parse(kind.name()).unwrap())
                .seed(Seed::new(12))
                .build(&g);
            assert_eq!(algo.name(), kind.name());
        }
    }

    #[test]
    fn parse_accepts_protocol_aliases() {
        for (alias, expect) in [
            ("spanner3", AlgorithmKind::Spanner(SpannerKind::Three)),
            ("three", AlgorithmKind::Spanner(SpannerKind::Three)),
            ("spanner5", AlgorithmKind::Spanner(SpannerKind::Five)),
            ("five", AlgorithmKind::Spanner(SpannerKind::Five)),
            ("k2", AlgorithmKind::Spanner(SpannerKind::K2)),
            ("spanner-k2", AlgorithmKind::Spanner(SpannerKind::K2)),
            ("mis", AlgorithmKind::Classic(ClassicKind::Mis)),
            ("matching", AlgorithmKind::Classic(ClassicKind::Matching)),
            ("vc", AlgorithmKind::Classic(ClassicKind::VertexCover)),
            ("coloring", AlgorithmKind::Classic(ClassicKind::Coloring)),
            ("MIS", AlgorithmKind::Classic(ClassicKind::Mis)),
        ] {
            assert_eq!(AlgorithmKind::parse(alias), Some(expect), "{alias}");
        }
        assert_eq!(AlgorithmKind::parse("spanner"), None);
        assert_eq!(AlgorithmKind::parse(""), None);
    }

    #[test]
    fn built_instances_report_registry_names() {
        let g = RegularBuilder::new(40, 4)
            .seed(Seed::new(1))
            .build()
            .unwrap();
        for kind in AlgorithmKind::all() {
            let algo = LcaBuilder::new(kind).seed(Seed::new(2)).build(&g);
            assert_eq!(algo.name(), kind.name());
            assert_ne!(algo.probe_bound(), "unspecified", "{}", kind.name());
        }
    }

    #[test]
    fn queries_match_query_kind_and_answer() {
        let g = GnpBuilder::new(50, 0.15).seed(Seed::new(4)).build();
        for kind in AlgorithmKind::all() {
            let algo = LcaBuilder::new(kind).seed(Seed::new(5)).build(&g);
            let queries = kind.queries(&g);
            for q in queries {
                assert_eq!(q.kind(), kind.query_kind());
                algo.query(q).unwrap();
            }
        }
    }

    #[test]
    fn wrong_query_shape_is_rejected_not_answered() {
        let g = GnpBuilder::new(30, 0.2).seed(Seed::new(6)).build();
        let spanner = LcaBuilder::new(AlgorithmKind::Spanner(SpannerKind::Three)).build(&g);
        let classic = LcaBuilder::new(AlgorithmKind::Classic(ClassicKind::Mis)).build(&g);
        let v = DynQuery::Vertex(VertexId::new(0));
        let (a, b) = g.edge_endpoints(0);
        let e = DynQuery::Edge(a, b);
        assert!(matches!(
            spanner.query(v),
            Err(LcaError::UnsupportedQuery { .. })
        ));
        assert!(matches!(
            classic.query(e),
            Err(LcaError::UnsupportedQuery { .. })
        ));
    }

    #[test]
    fn build_spanner_exposes_stretch_bounds() {
        let g = RegularBuilder::new(60, 4)
            .seed(Seed::new(7))
            .build()
            .unwrap();
        let three = LcaConfig::new(AlgorithmKind::Spanner(SpannerKind::Three), Seed::new(8));
        assert_eq!(three.build_spanner(&g).unwrap().stretch_bound(), 3);
        let mis = LcaConfig::new(AlgorithmKind::Classic(ClassicKind::Mis), Seed::new(8));
        assert!(mis.build_spanner(&g).is_none());
    }

    #[test]
    fn config_overrides_are_honored() {
        let g = GnpBuilder::new(40, 0.3).seed(Seed::new(9)).build();
        let mut p = ThreeSpannerParams::for_n(40);
        p.low_threshold = 1_000_000; // everything is low-degree → keep all
        let algo = LcaBuilder::new(AlgorithmKind::Spanner(SpannerKind::Three))
            .seed(Seed::new(10))
            .three_params(p)
            .build(&g);
        for (u, v) in g.edges() {
            assert!(algo.query(DynQuery::Edge(u, v)).unwrap());
        }
    }
}
