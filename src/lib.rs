//! # `lca` — Local Computation Algorithms for Graph Spanners
//!
//! Facade crate re-exporting the whole workspace, plus the [`registry`]
//! that constructs any of the seven LCAs uniformly from
//! `(oracle, kind, seed)`, the [`family`] registry naming the implicit
//! input families, and the [`source`] abstraction for drawing query
//! batches. See `docs/ARCHITECTURE.md` for the crate map and query
//! lifecycle, and `docs/PROTOCOL.md` for the `lca-serve` wire format.
//!
//! ```
//! use lca::prelude::*;
//! use lca::registry::{AlgorithmKind, LcaBuilder, SpannerKind};
//!
//! let graph = GnpBuilder::new(200, 0.2).seed(Seed::new(1)).build();
//! let oracle = CountingOracle::new(&graph);
//! // Uniform construction through the registry…
//! let kind = AlgorithmKind::Spanner(SpannerKind::Three);
//! let lca = LcaBuilder::new(kind).seed(Seed::new(7)).build(&oracle);
//! // …and batched, thread-parallel serving through the engine.
//! let answers = QueryEngine::new().query_batch(&lca, &kind.queries(&graph));
//! assert_eq!(answers.len(), graph.edge_count());
//! assert!(oracle.counts().total() > 0);
//! ```

#![forbid(unsafe_code)]

pub use lca_baseline as baseline;
pub use lca_classic as classic;
pub use lca_core as core;
pub use lca_graph as graph;
pub use lca_lowerbound as lowerbound;
pub use lca_probe as probe;
pub use lca_rand as rand;

pub mod family;
pub mod registry;
pub mod source;

/// Convenient glob-import surface for examples and downstream users.
pub mod prelude {
    pub use lca_core::{
        DynQuery, EdgeSubgraphLca, FiveSpanner, FiveSpannerParams, K2Params, K2Spanner, Lca,
        LcaError, QueryBudget, QueryCtx, QueryEngine, ThreeSpanner, ThreeSpannerParams,
        VertexSubsetLca, WithBudget,
    };
    pub use lca_graph::gen::{GnmBuilder, GnpBuilder, RegularBuilder};
    pub use lca_graph::implicit::{
        ImplicitChungLu, ImplicitGnp, ImplicitGrid, ImplicitHypercube, ImplicitOracle,
        ImplicitRegular, ImplicitTorus,
    };
    // `Oracle` is defined in `lca-graph` (the crate owning both backing
    // stores); `lca-probe` re-exports it for the accounting wrappers.
    pub use lca_graph::{Graph, GraphBuilder, Oracle, ProbeCost, VertexId};
    // `shard_for_*` is the workspace's one deterministic placement
    // function: probe-cache shards, the serve registry's shards, and the
    // fleet gateway's session→backend routing all agree through it.
    pub use lca_probe::{
        shard_for_key, shard_for_str, CacheStats, CachedOracle, CountingOracle, MemoOracle,
        ProbeCounts,
    };
    pub use lca_rand::Seed;

    pub use crate::family::{BoxedImplicitOracle, ImplicitFamily};
    pub use crate::registry::{AlgorithmKind, ClassicKind, LcaBuilder, LcaConfig, SpannerKind};
    pub use crate::source::QuerySource;
}
