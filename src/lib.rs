//! # `lca` — Local Computation Algorithms for Graph Spanners
//!
//! Facade crate re-exporting the whole workspace. See the README for the
//! architecture overview and `DESIGN.md` for the paper-to-code map.
//!
//! ```
//! use lca::prelude::*;
//!
//! let graph = GnpBuilder::new(200, 0.2).seed(Seed::new(1)).build();
//! let oracle = CountingOracle::new(&graph);
//! let lca = ThreeSpanner::with_defaults(&oracle, Seed::new(7));
//! let (u, v) = graph.edge_endpoints(0);
//! let _keep = lca.contains(u, v).unwrap();
//! assert!(oracle.counts().total() > 0);
//! ```

pub use lca_baseline as baseline;
pub use lca_classic as classic;
pub use lca_core as core;
pub use lca_graph as graph;
pub use lca_lowerbound as lowerbound;
pub use lca_probe as probe;
pub use lca_rand as rand;

/// Convenient glob-import surface for examples and downstream users.
pub mod prelude {
    pub use lca_core::{
        EdgeSubgraphLca, FiveSpanner, FiveSpannerParams, K2Params, K2Spanner, ThreeSpanner,
        ThreeSpannerParams,
    };
    pub use lca_graph::{Graph, GraphBuilder, VertexId};
    pub use lca_graph::gen::{GnmBuilder, GnpBuilder, RegularBuilder};
    pub use lca_probe::{CountingOracle, Oracle, ProbeCounts};
    pub use lca_rand::Seed;
}
