//! Probe-complexity regression guards: per-query probe counts must stay
//! within a (generous) constant of the paper's envelopes. These tests are
//! what catches an accidental locality regression — e.g. a scan that walks
//! a whole adjacency list instead of one block.

use lca::core::{
    measure_queries, FiveSpanner, FiveSpannerParams, K2Params, K2Spanner, ThreeSpanner,
    ThreeSpannerParams,
};
use lca::prelude::*;

fn ln(n: usize) -> f64 {
    (n as f64).ln()
}

#[test]
fn three_spanner_probes_stay_within_envelope() {
    let n = 500;
    let g = GnpBuilder::new(n, 0.3).seed(Seed::new(1)).build();
    let counter = CountingOracle::new(&g);
    let lca = ThreeSpanner::new(&counter, ThreeSpannerParams::for_n(n), Seed::new(2));
    let run = measure_queries(&g, &counter, &lca).unwrap();
    // Õ(n^{3/4}): allow a 10·log n constant.
    let envelope = 10.0 * (n as f64).powf(0.75) * ln(n);
    assert!(
        (run.per_query_max as f64) < envelope,
        "worst query {} exceeds envelope {envelope:.0}",
        run.per_query_max
    );
}

#[test]
fn five_spanner_probes_stay_within_envelope() {
    use lca::core::EdgeSubgraphLca;
    let n = 400;
    let g = GnpBuilder::new(n, 0.3).seed(Seed::new(3)).build();
    let counter = CountingOracle::new(&g);
    let lca = FiveSpanner::new(&counter, FiveSpannerParams::for_n(n), Seed::new(4));
    // Õ(n^{5/6}) with the |S(u)|·|S(v)| pair loop: allow 10·log³ n.
    let envelope = 10.0 * (n as f64).powf(5.0 / 6.0) * ln(n).powi(3);
    let mut worst = 0u64;
    for (i, (u, v)) in g.edges().enumerate() {
        if i % 17 != 0 {
            continue; // ~6% sample keeps the test fast
        }
        let scope = counter.scoped();
        lca.contains(u, v).unwrap();
        worst = worst.max(scope.cost().total());
    }
    assert!(
        (worst as f64) < envelope,
        "worst query {worst} exceeds envelope {envelope:.0}"
    );
}

#[test]
fn k2_spanner_probes_stay_within_envelope() {
    let n = 400;
    let d = 4;
    let g = RegularBuilder::new(n, d)
        .seed(Seed::new(5))
        .build()
        .unwrap();
    let counter = CountingOracle::new(&g);
    let lca = K2Spanner::new(
        &counter,
        K2Params::with_center_constant(n, 2, 3.0),
        Seed::new(6),
    );
    let run = measure_queries(&g, &counter, &lca).unwrap();
    // Õ(∆⁴·n^{2/3}·p) with p = 1/L: allow a 4·log n constant on ∆⁴L²·log n.
    let l = (n as f64).powf(1.0 / 3.0);
    let envelope = 4.0 * (d as f64).powi(4) * l * l * ln(n);
    assert!(
        (run.per_query_max as f64) < envelope,
        "worst query {} exceeds envelope {envelope:.0}",
        run.per_query_max
    );
}

#[test]
fn low_degree_queries_are_constant_probes() {
    // E_low answers must cost O(1): an edge query touching a low-degree
    // endpoint resolves after the degree checks.
    let g = lca::graph::gen::structured::cycle(5_000);
    let counter = CountingOracle::new(&g);
    let lca = ThreeSpanner::with_defaults(&counter, Seed::new(7));
    for i in [0usize, 1_000, 4_999] {
        let (u, v) = g.edge_endpoints(i);
        let scope = counter.scoped();
        assert!(lca.contains(u, v).unwrap());
        assert!(
            scope.cost().total() <= 6,
            "low-degree query cost {} probes",
            scope.cost().total()
        );
    }
}

#[test]
fn probe_counts_are_deterministic_per_query() {
    // Same query, fresh LCA ⇒ identical probe count (no hidden state).
    let g = GnpBuilder::new(300, 0.2).seed(Seed::new(8)).build();
    for i in [0usize, 77, 500] {
        let (u, v) = g.edge_endpoints(i % g.edge_count());
        let cost = |seed: u64| {
            let counter = CountingOracle::new(&g);
            let lca = ThreeSpanner::new(&counter, ThreeSpannerParams::for_n(300), Seed::new(seed));
            lca.contains(u, v).unwrap();
            counter.counts().total()
        };
        assert_eq!(cost(9), cost(9));
    }
}
