//! Implicit-vs-materialized equivalence: for every implicit family and every
//! registered algorithm, running against the generator-backed oracle must be
//! indistinguishable from running against its materialized `Graph` — same
//! answers *and* same probe transcripts.
//!
//! This is the executable form of the tentpole's contract: an implicit
//! oracle is not "approximately" the graph, it *is* the graph, probe for
//! probe; only the storage differs. Sizes stay ≤ 4096 so materialization is
//! cheap.

use lca::core::QueryEngine;
use lca::prelude::*;
use lca::probe::TracingOracle;

/// Expands `$body` once per implicit family at test size, with `$oracle`
/// bound to a concretely-typed oracle (a macro rather than a helper taking
/// `&dyn ImplicitOracle`, because the registry needs the `Oracle` bound on
/// the concrete type).
macro_rules! with_families {
    ($family:ident, $oracle:ident, $body:block) => {{
        let seed = Seed::new(0xE0);
        {
            let $family = "regular";
            let $oracle = ImplicitRegular::new(1024, 4, seed);
            $body
        }
        {
            let $family = "gnp";
            let $oracle = ImplicitGnp::new(1024, 4.0, seed);
            $body
        }
        {
            let $family = "chung-lu";
            let $oracle = ImplicitChungLu::power_law(1024, 2.5, 6.0, seed);
            $body
        }
        {
            let $family = "grid";
            let $oracle = ImplicitGrid::new(32, 32);
            $body
        }
        {
            let $family = "torus";
            let $oracle = ImplicitTorus::new(32, 32);
            $body
        }
        {
            let $family = "hypercube";
            let $oracle = ImplicitHypercube::new(10);
            $body
        }
    }};
}

#[test]
fn all_algorithms_answer_identically_on_implicit_and_materialized() {
    with_families!(family, oracle, {
        let graph = oracle.materialize();
        for kind in AlgorithmKind::all() {
            let algo_seed = Seed::new(0x5EED);
            // One shared query list for both sides (the classic LCAs
            // memoize across queries, so a shared order keeps transcripts
            // comparable; answers are order-independent by Definition 1.4).
            let queries = kind.queries_from(&oracle, QuerySource::Exhaustive);
            assert!(
                !queries.is_empty(),
                "{family}/{kind}: empty query set would make this test vacuous"
            );

            let implicit_algo = LcaBuilder::new(kind).seed(algo_seed).build(&oracle);
            let materialized_algo = LcaBuilder::new(kind).seed(algo_seed).build(&graph);

            let from_implicit = QueryEngine::serial().query_batch(&implicit_algo, &queries);
            let from_graph = QueryEngine::serial().query_batch(&materialized_algo, &queries);
            assert_eq!(
                from_implicit, from_graph,
                "{family}/{kind}: answers diverged between implicit and materialized"
            );
        }
    });
}

#[test]
fn probe_transcripts_match_between_implicit_and_materialized() {
    with_families!(family, oracle, {
        let graph = oracle.materialize();
        for kind in AlgorithmKind::all() {
            let algo_seed = Seed::new(0x7AC);
            let queries: Vec<_> = kind
                .queries_from(&oracle, QuerySource::Exhaustive)
                .into_iter()
                .take(300)
                .collect();

            let implicit_trace = TracingOracle::new(&oracle);
            let implicit_algo = LcaBuilder::new(kind).seed(algo_seed).build(&implicit_trace);
            for &q in &queries {
                implicit_algo.query(q).unwrap();
            }

            let graph_trace = TracingOracle::new(&graph);
            let materialized_algo = LcaBuilder::new(kind).seed(algo_seed).build(&graph_trace);
            for &q in &queries {
                materialized_algo.query(q).unwrap();
            }

            let a = implicit_trace.take_trace();
            let b = graph_trace.take_trace();
            assert_eq!(
                a.len(),
                b.len(),
                "{family}/{kind}: transcript lengths diverged"
            );
            assert_eq!(
                a,
                b,
                "{family}/{kind}: probe transcripts diverged (same length {})",
                b.len()
            );
        }
    });
}

#[test]
fn parallel_engine_agrees_with_serial_on_implicit_oracles() {
    // The acceptance path: query_batch over an implicit instance, sharded,
    // must equal the serial answers.
    let oracle = ImplicitGnp::new(4096, 4.0, Seed::new(0xE6));
    for kind in [
        AlgorithmKind::Classic(ClassicKind::Mis),
        AlgorithmKind::Spanner(SpannerKind::Three),
    ] {
        let algo = LcaBuilder::new(kind).seed(Seed::new(9)).build(&oracle);
        let queries = kind.queries_from(&oracle, QuerySource::sample(500, Seed::new(10)));
        let serial = QueryEngine::serial().query_batch(&algo, &queries);
        for threads in [2usize, 4, 8] {
            let parallel = QueryEngine::with_threads(threads).query_batch(&algo, &queries);
            assert_eq!(parallel, serial, "{kind} diverged at {threads} threads");
        }
    }
}
