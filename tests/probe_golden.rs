//! Probe-count golden regression test.
//!
//! Answer regressions are caught by the equivalence suites; this file
//! catches *probe-complexity* regressions the same way: seeded expected
//! probe counts for every registered algorithm over two implicit input
//! families at n = 1024. A change in any constant means a change in probe
//! behavior — either an intended algorithmic change (rerun the updater
//! below and commit the new table with an explanation) or a regression.
//!
//! The measurement doubles as the unified-meter law: for each query, the
//! `QueryCtx` meter must agree exactly with a `CountingOracle` wrapped
//! around the same stack — one probe, one charge, at the top of the
//! decorator stack.
//!
//! To regenerate after an intentional change:
//!
//! ```text
//! cargo test --test probe_golden -- --ignored --nocapture print_probe_fingerprints
//! ```

// Stdout is this target's output channel; the print ban is for library code.
#![allow(clippy::print_stdout)]
use lca::prelude::*;

const N: usize = 1024;
const QUERIES: usize = 64;

/// The two input families of the golden table (default knobs).
fn families() -> [ImplicitFamily; 2] {
    [ImplicitFamily::Gnp, ImplicitFamily::Regular]
}

/// `(algorithm, family, total probes, max probes over the batch)` for the
/// seeded 64-query batch below. Regenerate with `print_probe_fingerprints`.
const GOLDEN: &[(&str, &str, u64, u64)] = &[
    ("three-spanner", "implicit-gnp", 256, 4),
    ("three-spanner", "implicit-regular", 256, 4),
    ("five-spanner", "implicit-gnp", 256, 4),
    ("five-spanner", "implicit-regular", 256, 4),
    ("k2-spanner", "implicit-gnp", 1740, 84),
    ("k2-spanner", "implicit-regular", 4075, 146),
    ("mis", "implicit-gnp", 1133, 133),
    ("mis", "implicit-regular", 3240, 609),
    ("maximal-matching", "implicit-gnp", 4048, 314),
    ("maximal-matching", "implicit-regular", 10981, 944),
    ("vertex-cover", "implicit-gnp", 4048, 314),
    ("vertex-cover", "implicit-regular", 10981, 944),
    ("greedy-coloring", "implicit-gnp", 3657, 698),
    ("greedy-coloring", "implicit-regular", 9331, 2517),
];

/// Measures one `(kind, family)` cell: total and max probes over the
/// seeded query batch, asserting meter/counter agreement along the way.
fn measure(kind: AlgorithmKind, family: ImplicitFamily) -> (u64, u64) {
    let oracle = family.build(N, Seed::new(0x90_1D));
    let counter = CountingOracle::new(&oracle);
    let algo = LcaBuilder::new(kind)
        .seed(Seed::new(0xA1_60))
        .build(&counter);
    let queries =
        LcaBuilder::new(kind).queries(&oracle, QuerySource::sample(QUERIES, Seed::new(0x5A)));
    let mut total = 0u64;
    let mut max = 0u64;
    for q in queries {
        let before = counter.counts().total();
        let ctx = QueryCtx::unlimited();
        algo.query_ctx(q, &ctx)
            .expect("golden queries are in range");
        let counted = counter.counts().total() - before;
        assert_eq!(
            ctx.spent(),
            counted,
            "{kind} over {family}: ctx meter disagrees with CountingOracle"
        );
        total += counted;
        max = max.max(counted);
    }
    (total, max)
}

#[test]
fn probe_counts_match_golden_table() {
    let mut missing = Vec::new();
    for kind in AlgorithmKind::all() {
        for family in families() {
            let (total, max) = measure(kind, family);
            match GOLDEN
                .iter()
                .find(|(k, f, _, _)| *k == kind.name() && *f == family.name())
            {
                Some(&(_, _, want_total, want_max)) => {
                    assert_eq!(
                        (total, max),
                        (want_total, want_max),
                        "probe fingerprint drifted for {} over {} — if intended, rerun \
                         `cargo test --test probe_golden -- --ignored --nocapture \
                         print_probe_fingerprints` and update GOLDEN",
                        kind.name(),
                        family.name()
                    );
                }
                None => missing.push((kind.name(), family.name())),
            }
        }
    }
    assert!(missing.is_empty(), "GOLDEN lacks entries for {missing:?}");
    assert_eq!(GOLDEN.len(), AlgorithmKind::all().len() * families().len());
}

/// The updater: prints the GOLDEN table ready to paste.
#[test]
#[ignore = "updater helper — run with --ignored --nocapture to regenerate GOLDEN"]
fn print_probe_fingerprints() {
    println!("const GOLDEN: &[(&str, &str, u64, u64)] = &[");
    for kind in AlgorithmKind::all() {
        for family in families() {
            let (total, max) = measure(kind, family);
            println!(
                "    (\"{}\", \"{}\", {total}, {max}),",
                kind.name(),
                family.name()
            );
        }
    }
    println!("];");
}
