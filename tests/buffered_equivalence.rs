//! Buffered-vs-allocating differential suite.
//!
//! The probe pipeline gives every oracle two equivalent entry points: the
//! allocating point probes (`degree`, `neighbor(·, i)`) and the buffered
//! bulk scan (`neighbors_into`). The contract — the transcript-identity
//! law — is that one buffered scan IS `degree(v)` followed by
//! `neighbor(v, 0..d)`: same answers, same probe records, same meter
//! charges, whichever entry point the caller (or any decorator in the
//! stack) picked. This suite pins that law differentially:
//!
//! * per vertex: the bulk scan and the hand-decomposed scan produce the
//!   same neighbor list AND the same probe trace through a
//!   [`TracingOracle`], over every randomized implicit family;
//! * per algorithm: all seven registered algorithms answer identically
//!   with identical per-query probe counts whether the oracle stack
//!   forwards `neighbors_into` natively or a shim forces the decomposed
//!   path everywhere;
//! * per meter: a buffered scan through `QueryCtx::budgeted` charges the
//!   context exactly `deg(v) + 1` — once per logical probe, agreeing with
//!   a `CountingOracle` in the same stack.

use lca::prelude::*;
use lca::probe::TracingOracle;

const N: usize = 1024;
const QUERIES: usize = 32;

/// The randomized implicit families (the lattice families share the same
/// code path via the trait default and are covered by the oracle-laws
/// suite).
fn families() -> [ImplicitFamily; 3] {
    [
        ImplicitFamily::Gnp,
        ImplicitFamily::Regular,
        ImplicitFamily::ChungLu,
    ]
}

/// A shim that hides the inner oracle's `neighbors_into` override: point
/// probes forward, so the trait-default decomposition above it is the ONLY
/// way a bulk scan can reach the inner oracle. Stacking an algorithm on
/// this is exactly the pre-pipeline allocating behavior.
struct DecomposedOracle<O>(O);

impl<O: Oracle> Oracle for DecomposedOracle<O> {
    fn vertex_count(&self) -> usize {
        self.0.vertex_count()
    }
    fn degree(&self, v: VertexId) -> usize {
        self.0.degree(v)
    }
    fn neighbor(&self, v: VertexId, i: usize) -> Option<VertexId> {
        self.0.neighbor(v, i)
    }
    fn adjacency(&self, u: VertexId, v: VertexId) -> Option<usize> {
        self.0.adjacency(u, v)
    }
    fn label(&self, v: VertexId) -> u64 {
        self.0.label(v)
    }
    fn probe_cost_hint(&self) -> ProbeCost {
        self.0.probe_cost_hint()
    }
    // NO neighbors_into override: the trait default decomposes.
}

/// Sample of probe targets spread over the vertex range.
fn sample_vertices(n: usize) -> Vec<VertexId> {
    (0..64).map(|i| VertexId::new(i * n / 64)).collect()
}

#[test]
fn bulk_scan_matches_decomposed_scan_per_vertex() {
    for family in families() {
        let oracle = family.build(N, Seed::new(0xBEEF));
        for v in sample_vertices(oracle.vertex_count()) {
            // Bulk path: one neighbors_into through a tracer.
            let traced = TracingOracle::new(&oracle);
            let mut bulk = Vec::new();
            let d_bulk = traced.neighbors_into(v, &mut bulk);
            let bulk_trace = traced.take_trace();

            // Allocating path: hand-written degree + neighbor loop.
            let traced = TracingOracle::new(&oracle);
            let d_manual = traced.degree(v);
            let mut manual = Vec::new();
            for i in 0..d_manual {
                match traced.neighbor(v, i) {
                    Some(w) => manual.push(w),
                    None => break,
                }
            }
            let manual_trace = traced.take_trace();

            assert_eq!(d_bulk, d_manual, "{family}: degree disagrees at {v}");
            assert_eq!(bulk, manual, "{family}: neighbor list disagrees at {v}");
            assert_eq!(
                bulk_trace, manual_trace,
                "{family}: probe transcript disagrees at {v}"
            );
        }
    }
}

#[test]
fn algorithms_agree_across_entry_points() {
    for family in families() {
        let oracle = family.build(N, Seed::new(0x90_1D));
        for kind in AlgorithmKind::all() {
            let direct_counter = CountingOracle::new(&oracle);
            let direct = LcaBuilder::new(kind)
                .seed(Seed::new(0xA1_60))
                .build(&direct_counter);
            let decomposed_counter = CountingOracle::new(DecomposedOracle(&oracle));
            let decomposed = LcaBuilder::new(kind)
                .seed(Seed::new(0xA1_60))
                .build(&decomposed_counter);
            let queries = LcaBuilder::new(kind)
                .queries(&oracle, QuerySource::sample(QUERIES, Seed::new(0x5A)));
            for q in queries {
                let before_a = direct_counter.counts();
                let before_b = decomposed_counter.counts();
                let a = direct.query(q);
                let b = decomposed.query(q);
                match (a, b) {
                    (Ok(x), Ok(y)) => assert_eq!(
                        x,
                        y,
                        "{} over {family}: answer diverged on {q:?}",
                        kind.name()
                    ),
                    (a, b) => panic!(
                        "{} over {family}: query {q:?} failed: {a:?} vs {b:?}",
                        kind.name()
                    ),
                }
                assert_eq!(
                    direct_counter.counts().since(before_a),
                    decomposed_counter.counts().since(before_b),
                    "{} over {family}: probe counts diverged on {q:?}",
                    kind.name()
                );
            }
        }
    }
}

#[test]
fn buffered_scan_charges_meter_once_per_probe() {
    for family in families() {
        let oracle = family.build(N, Seed::new(0xC0DE));
        let counter = CountingOracle::new(&oracle);
        let ctx = QueryCtx::unlimited();
        let budgeted = ctx.budgeted(&counter);
        let mut buf = Vec::new();
        let mut expected_spent = 0u64;
        for v in sample_vertices(oracle.vertex_count()) {
            let before = counter.counts();
            let d = budgeted.neighbors_into(v, &mut buf);
            assert_eq!(buf.len(), d, "{family}: unbudgeted scan must complete");
            // Exactly one degree + d neighbor probes, charged once each:
            // the context meter and the counter below it agree probe for
            // probe.
            let delta = counter.counts().since(before);
            assert_eq!(delta.degree, 1, "{family}: degree probes at {v}");
            assert_eq!(delta.neighbor, d as u64, "{family}: neighbor probes at {v}");
            expected_spent += 1 + d as u64;
            assert_eq!(
                ctx.spent(),
                expected_spent,
                "{family}: meter drifted from counter at {v}"
            );
        }
    }
}
