//! Property-style tests: the stretch invariants hold unconditionally over
//! random graphs, densities and seeds (thanks to the deterministic
//! fallbacks documented in DESIGN.md).
//!
//! Cases are generated from a fixed master seed with the workspace's own
//! `SplitMix64` (this container has no registry access for proptest); every
//! failure message includes the case tuple, so a reproduction is one
//! hard-coded call away.

use lca::core::global::{five_spanner_global, into_subgraph, three_spanner_global};
use lca::core::{FiveSpannerParams, ThreeSpannerParams};
use lca::prelude::*;
use lca::rand::SplitMix64;

const CASES: u64 = 24;

/// Draws `(n, p, seed)` G(n,p) cases from one deterministic stream.
fn gnp_cases(tag: u64) -> impl Iterator<Item = (usize, f64, u64)> {
    let mut rng = SplitMix64::new(0x57AE7C4 ^ tag);
    (0..CASES).map(move |_| {
        let n = 20 + rng.next_below(50) as usize;
        let p = 0.05 + (rng.next_below(45) as f64) / 100.0;
        (n, p, rng.next_u64())
    })
}

fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    GnpBuilder::new(n, p).seed(Seed::new(seed)).build()
}

#[test]
fn three_spanner_stretch_never_exceeds_three() {
    for (n, p, seed) in gnp_cases(1) {
        let g = gnp(n, p, seed);
        let params = ThreeSpannerParams::for_n(g.vertex_count());
        let h = into_subgraph(&g, &three_spanner_global(&g, &params, Seed::new(seed)));
        let stretch = h.max_edge_stretch(&g, 4);
        assert!(
            matches!(stretch, Some(s) if s <= 3),
            "case (n={n}, p={p}, seed={seed}): stretch {stretch:?}"
        );
    }
}

#[test]
fn five_spanner_stretch_never_exceeds_five() {
    for (n, p, seed) in gnp_cases(2) {
        let g = gnp(n, p, seed);
        let params = FiveSpannerParams::for_n(g.vertex_count());
        let h = into_subgraph(&g, &five_spanner_global(&g, &params, Seed::new(seed)));
        let stretch = h.max_edge_stretch(&g, 6);
        assert!(
            matches!(stretch, Some(s) if s <= 5),
            "case (n={n}, p={p}, seed={seed}): stretch {stretch:?}"
        );
    }
}

#[test]
fn spanners_are_subgraphs() {
    for (n, p, seed) in gnp_cases(3) {
        let g = gnp(n, p, seed);
        let params = ThreeSpannerParams::for_n(g.vertex_count());
        let h = three_spanner_global(&g, &params, Seed::new(seed));
        for &(a, b) in &h {
            assert!(
                g.has_edge(VertexId::from(a), VertexId::from(b)),
                "case (n={n}, p={p}, seed={seed}): non-edge {a}-{b} in spanner"
            );
        }
    }
}

#[test]
fn baseline_baswana_sen_stretch() {
    for (i, (n, p, seed)) in gnp_cases(4).enumerate() {
        let g = gnp(n, p, seed);
        let k = 2 + i % 2;
        let h = lca::baseline::baswana_sen(&g, k, Seed::new(seed));
        let bound = (2 * k - 1) as u32;
        let stretch = h.max_edge_stretch(&g, bound + 1);
        assert!(
            matches!(stretch, Some(s) if s <= bound),
            "case (n={n}, p={p}, seed={seed}, k={k}): {stretch:?}"
        );
    }
}

#[test]
fn baseline_greedy_stretch_and_size() {
    for (i, (n, p, seed)) in gnp_cases(5).enumerate() {
        let g = gnp(n, p, seed);
        let t = 3 + i % 3;
        let h = lca::baseline::greedy_spanner(&g, t);
        let stretch = h.max_edge_stretch(&g, t as u32 + 1);
        assert!(
            matches!(stretch, Some(s) if s as usize <= t),
            "case (n={n}, p={p}, seed={seed}, t={t}): {stretch:?}"
        );
        assert!(h.edge_count() <= g.edge_count());
    }
}

#[test]
fn tiny_toy_parameters_still_give_valid_three_spanners() {
    // Arbitrary (even silly) parameter combinations must never break the
    // stretch guarantee — only the size/probe trade-off.
    let mut rng = SplitMix64::new(0x7075);
    for (n, p, seed) in gnp_cases(6) {
        let g = gnp(n, p, seed);
        let low = 1 + rng.next_below(5) as usize;
        let super_t = 6 + rng.next_below(8) as usize;
        let p_center = (2 + rng.next_below(7)) as f64 / 10.0;
        let params = lca::core::ThreeSpannerParams {
            low_threshold: low,
            super_threshold: super_t,
            center_block: low.max(2),
            super_block: super_t,
            center_prob: p_center,
            super_center_prob: 0.2,
            independence: 8,
        };
        let h = into_subgraph(&g, &three_spanner_global(&g, &params, Seed::new(seed)));
        let stretch = h.max_edge_stretch(&g, 4);
        assert!(
            matches!(stretch, Some(s) if s <= 3),
            "case (n={n}, p={p}, seed={seed}, low={low}, super={super_t}, pc={p_center}): {stretch:?}"
        );
    }
}

#[test]
fn k2_spanner_connectivity_on_bounded_degree_graphs() {
    // Separate smaller loop: k² cases are heavier.
    use lca::core::global::k2_spanner_global;
    use lca::core::K2Params;
    for (s, k) in [(1u64, 2usize), (2, 3)] {
        let g = RegularBuilder::new(80, 4)
            .seed(Seed::new(s))
            .build()
            .unwrap();
        let params = K2Params::for_n(80, k);
        let h = into_subgraph(&g, &k2_spanner_global(&g, &params, Seed::new(10 + s)));
        let bound = ((2 * k + 1) * (2 * k + 2)) as u32;
        let stretch = h.max_edge_stretch(&g, bound);
        assert!(stretch.is_some(), "k={k}: a removed edge lost connectivity");
    }
}
