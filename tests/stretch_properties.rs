//! Property-based tests: the stretch invariants hold unconditionally over
//! random graphs, densities and seeds (thanks to the deterministic
//! fallbacks documented in DESIGN.md).

use lca::core::global::{
    five_spanner_global, into_subgraph, three_spanner_global,
};
use lca::core::{FiveSpannerParams, ThreeSpannerParams};
use lca::prelude::*;
use proptest::prelude::*;

fn arbitrary_gnp() -> impl Strategy<Value = Graph> {
    (20usize..70, 5u32..50, any::<u64>()).prop_map(|(n, p_pct, seed)| {
        GnpBuilder::new(n, p_pct as f64 / 100.0)
            .seed(Seed::new(seed))
            .build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn three_spanner_stretch_never_exceeds_three(g in arbitrary_gnp(), seed in any::<u64>()) {
        let params = ThreeSpannerParams::for_n(g.vertex_count());
        let h = into_subgraph(&g, &three_spanner_global(&g, &params, Seed::new(seed)));
        let stretch = h.max_edge_stretch(&g, 4);
        prop_assert!(matches!(stretch, Some(s) if s <= 3), "stretch {stretch:?}");
    }

    #[test]
    fn five_spanner_stretch_never_exceeds_five(g in arbitrary_gnp(), seed in any::<u64>()) {
        let params = FiveSpannerParams::for_n(g.vertex_count());
        let h = into_subgraph(&g, &five_spanner_global(&g, &params, Seed::new(seed)));
        let stretch = h.max_edge_stretch(&g, 6);
        prop_assert!(matches!(stretch, Some(s) if s <= 5), "stretch {stretch:?}");
    }

    #[test]
    fn spanners_are_subgraphs(g in arbitrary_gnp(), seed in any::<u64>()) {
        let params = ThreeSpannerParams::for_n(g.vertex_count());
        let h = three_spanner_global(&g, &params, Seed::new(seed));
        for &(a, b) in &h {
            prop_assert!(g.has_edge(VertexId::from(a), VertexId::from(b)));
        }
    }

    #[test]
    fn baseline_baswana_sen_stretch(g in arbitrary_gnp(), seed in any::<u64>(), k in 2usize..4) {
        let h = lca::baseline::baswana_sen(&g, k, Seed::new(seed));
        let bound = (2 * k - 1) as u32;
        let stretch = h.max_edge_stretch(&g, bound + 1);
        prop_assert!(matches!(stretch, Some(s) if s <= bound), "k={k}: {stretch:?}");
    }

    #[test]
    fn baseline_greedy_stretch_and_size(g in arbitrary_gnp(), t in 3usize..6) {
        let h = lca::baseline::greedy_spanner(&g, t);
        let stretch = h.max_edge_stretch(&g, t as u32 + 1);
        prop_assert!(matches!(stretch, Some(s) if s as usize <= t));
        prop_assert!(h.edge_count() <= g.edge_count());
    }

    #[test]
    fn tiny_toy_parameters_still_give_valid_three_spanners(
        g in arbitrary_gnp(),
        seed in any::<u64>(),
        low in 1usize..6,
        super_t in 6usize..14,
        p_center in 2u32..9,
    ) {
        // Arbitrary (even silly) parameter combinations must never break
        // the stretch guarantee — only the size/probe trade-off.
        let params = lca::core::ThreeSpannerParams {
            low_threshold: low,
            super_threshold: super_t,
            center_block: low.max(2),
            super_block: super_t,
            center_prob: p_center as f64 / 10.0,
            super_center_prob: 0.2,
            independence: 8,
        };
        let h = into_subgraph(&g, &three_spanner_global(&g, &params, Seed::new(seed)));
        let stretch = h.max_edge_stretch(&g, 4);
        prop_assert!(matches!(stretch, Some(s) if s <= 3), "stretch {stretch:?}");
    }
}

#[test]
fn k2_spanner_connectivity_on_bounded_degree_graphs() {
    // Separate (non-proptest) loop: k² cases are heavier.
    use lca::core::global::k2_spanner_global;
    use lca::core::K2Params;
    for (s, k) in [(1u64, 2usize), (2, 3)] {
        let g = RegularBuilder::new(80, 4).seed(Seed::new(s)).build().unwrap();
        let params = K2Params::for_n(80, k);
        let h = into_subgraph(&g, &k2_spanner_global(&g, &params, Seed::new(10 + s)));
        let bound = ((2 * k + 1) * (2 * k + 2)) as u32;
        let stretch = h.max_edge_stretch(&g, bound);
        assert!(stretch.is_some(), "k={k}: a removed edge lost connectivity");
    }
}
