//! The consistency contract of Definition 1.4 under concurrency: for every
//! registered algorithm, answers served through the batched / parallel
//! `QueryEngine` must be identical to serial one-at-a-time answers on the
//! same `(graph, seed)` — whether the engine shares one instance across
//! threads or rebuilds per-shard instances from the seed.

use lca::core::{DynQuery, QueryEngine};
use lca::prelude::*;

fn test_graph() -> Graph {
    // Degree-bounded enough that the classic (exponential-in-Δ) LCAs stay
    // fast, dense enough that spanners exercise their non-trivial paths.
    RegularBuilder::new(120, 6)
        .seed(Seed::new(0xE0))
        .build()
        .unwrap()
}

#[test]
fn engine_answers_equal_serial_answers_for_every_algorithm() {
    let g = test_graph();
    for kind in AlgorithmKind::all() {
        let seed = Seed::new(0x1234);
        let queries = kind.queries(&g);

        // Serial reference: a fresh instance queried one at a time.
        let serial_algo = LcaBuilder::new(kind).seed(seed).build(&g);
        let serial: Vec<bool> = queries
            .iter()
            .map(|&q| serial_algo.query(q).unwrap())
            .collect();

        // Shared-instance parallel batch (exercises Sync memo tables).
        let shared_algo = LcaBuilder::new(kind).seed(seed).build(&g);
        for threads in [1usize, 2, 4, 8] {
            let engine = QueryEngine::with_threads(threads);
            let batched: Vec<bool> = engine
                .query_batch(&shared_algo, &queries)
                .into_iter()
                .map(|a| a.unwrap())
                .collect();
            assert_eq!(
                batched,
                serial,
                "{} diverged under shared-instance batching with {threads} threads",
                kind.name()
            );
        }

        // Fresh-instance parallel batch: a *new* instance per engine run
        // must still agree (no hidden cross-query state).
        let rebuilt_algo = LcaBuilder::new(kind).seed(seed).build(&g);
        let rebuilt: Vec<bool> = QueryEngine::new()
            .query_batch(&rebuilt_algo, &queries)
            .into_iter()
            .map(|a| a.unwrap())
            .collect();
        assert_eq!(rebuilt, serial, "{} diverged across instances", kind.name());
    }
}

#[test]
fn engine_answers_are_independent_of_query_order() {
    let g = test_graph();
    for kind in AlgorithmKind::all() {
        let algo = LcaBuilder::new(kind).seed(Seed::new(0xABC)).build(&g);
        let queries = kind.queries(&g);
        let mut reversed = queries.clone();
        reversed.reverse();
        let engine = QueryEngine::with_threads(4);
        let forward: Vec<bool> = engine
            .query_batch(&algo, &queries)
            .into_iter()
            .map(|a| a.unwrap())
            .collect();
        let mut backward: Vec<bool> = engine
            .query_batch(&algo, &reversed)
            .into_iter()
            .map(|a| a.unwrap())
            .collect();
        backward.reverse();
        assert_eq!(
            forward,
            backward,
            "{} is query-order sensitive",
            kind.name()
        );
    }
}

#[test]
fn parallel_measurement_equals_serial_measurement_for_every_spanner() {
    let g = test_graph();
    for kind in [SpannerKind::Three, SpannerKind::Five, SpannerKind::K2] {
        let config = LcaConfig::new(AlgorithmKind::Spanner(kind), Seed::new(0xF00));

        let counter = CountingOracle::new(&g);
        let serial_lca = config.build_spanner(&counter).unwrap();
        let serial = lca::core::measure_queries(&g, &counter, &serial_lca).unwrap();

        let run = QueryEngine::with_threads(4)
            .measure_queries(&g, &g, |c| config.build_spanner(c).unwrap())
            .unwrap();

        assert_eq!(run.algorithm, serial.algorithm);
        assert_eq!(run.kept.edge_count(), serial.kept.edge_count());
        for (u, v) in serial.kept.edges() {
            assert!(run.kept.has_edge(u, v), "{}: lost {u}-{v}", run.algorithm);
        }
        assert_eq!(run.total, serial.total, "{}", run.algorithm);
        assert_eq!(run.per_query_max, serial.per_query_max, "{}", run.algorithm);
        assert!(!run.per_shard.is_empty());
    }
}

#[test]
fn boxed_dyn_lca_is_usable_as_trait_object() {
    // Object-safety of the full family, through the registry's box types.
    let g = test_graph();
    let (u, v) = g.edge_endpoints(0);
    let algos: Vec<lca::registry::DynLca> = AlgorithmKind::all()
        .into_iter()
        .map(|kind| LcaBuilder::new(kind).seed(Seed::new(1)).build(&g))
        .collect();
    for algo in &algos {
        let q = match AlgorithmKind::from_name(algo.name()).unwrap().query_kind() {
            lca::core::QueryKind::Edge => DynQuery::Edge(u, v),
            lca::core::QueryKind::Vertex => DynQuery::Vertex(u),
        };
        algo.query(q).unwrap();
    }
}
