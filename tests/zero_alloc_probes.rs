//! Alloc-counting shim for the probe hot path.
//!
//! The amortized probe pipeline promises that steady-state probing of an
//! implicit oracle allocates nothing: the per-thread generation memo owns
//! reusable buffers, and `neighbors_into` copies into a caller-provided
//! `Vec` whose capacity survives across probes. This binary installs a
//! counting global allocator and asserts the promise literally — after one
//! warm-up scan per vertex, a storm of `degree`/`neighbor`/`adjacency`/
//! `neighbors_into` probes against the resident working set performs ZERO
//! allocator calls.
//!
//! Everything lives in one `#[test]`: the counter is process-global, and a
//! sibling test allocating on another thread would poison the measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use lca::prelude::*;

struct CountingAllocator;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers to `System` for every operation; only adds a counter.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn alloc_calls() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

#[test]
fn warmed_probes_do_not_allocate() {
    const N: usize = 4096;
    const ROUNDS: usize = 100;
    for family in [
        ImplicitFamily::Gnp,
        ImplicitFamily::Regular,
        ImplicitFamily::ChungLu,
    ] {
        let oracle = family.build(N, Seed::new(0xA110C));
        // Two resident vertices — well under the memo's associativity, so
        // alternating probes never evict each other.
        let targets = [VertexId::new(17), VertexId::new(2048)];
        let mut buf: Vec<VertexId> = Vec::new();
        let mut warm_lists: Vec<Vec<VertexId>> = Vec::new();
        // Warm-up: generate both lists once (fills the per-thread memo and
        // grows `buf` to the working-set high-water mark), and snapshot the
        // answers the storm must keep reproducing.
        for &v in &targets {
            oracle.neighbors_into(v, &mut buf);
            warm_lists.push(buf.clone());
        }
        let baseline = alloc_calls();
        let mut checksum = 0u64;
        for round in 0..ROUNDS {
            for (slot, &v) in targets.iter().enumerate() {
                let d = oracle.neighbors_into(v, &mut buf);
                checksum += d as u64;
                assert_eq!(d, oracle.degree(v), "{family}: degree drifted");
                if d > 0 {
                    let i = round % d;
                    let w = oracle.neighbor(v, i);
                    checksum += w.map_or(0, |w| w.index() as u64);
                    if let Some(w) = w {
                        checksum += oracle.adjacency(v, w).map_or(0, |j| j as u64);
                    }
                }
                assert_eq!(
                    buf, warm_lists[slot],
                    "{family}: warmed list changed under repetition"
                );
            }
        }
        let spent = alloc_calls() - baseline;
        assert_eq!(
            spent, 0,
            "{family}: {spent} allocator calls across {ROUNDS} warmed probe \
             rounds (checksum {checksum})"
        );
    }
}
