//! End-to-end pipelines across crates: generator → oracle → LCA → harness →
//! verifier, plus sublinearity sanity and classic-LCA integration.

use lca::core::verify::verify_spanner;
use lca::core::{measure_queries, FiveSpanner, ThreeSpanner};
use lca::prelude::*;
use lca::probe::MemoOracle;

#[test]
fn full_pipeline_three_spanner() {
    let graph = GnpBuilder::new(400, 0.15).seed(Seed::new(1)).build();
    let counter = CountingOracle::new(&graph);
    let lca = ThreeSpanner::with_defaults(&counter, Seed::new(2));
    let run = measure_queries(&graph, &counter, &lca).unwrap();
    let verdict = verify_spanner(&graph, &run.kept, 3);
    assert!(verdict.holds(), "verdict {verdict:?}");
    assert!(run.per_query_max > 0);
    // Sublinearity sanity: the worst query must read far less than the
    // graph (m edges ⇒ 2m adjacency-list entries).
    assert!(
        (run.per_query_max as usize) < graph.edge_count() / 2,
        "per-query probes {} vs m {}",
        run.per_query_max,
        graph.edge_count()
    );
}

#[test]
fn full_pipeline_five_spanner() {
    let graph = GnpBuilder::new(300, 0.2).seed(Seed::new(3)).build();
    let counter = CountingOracle::new(&graph);
    let lca = FiveSpanner::with_defaults(&counter, Seed::new(4));
    let run = measure_queries(&graph, &counter, &lca).unwrap();
    let verdict = verify_spanner(&graph, &run.kept, 5);
    assert!(verdict.holds(), "verdict {verdict:?}");
    // The spanner must actually sparsify a dense input (the asymptotic
    // 5-vs-3 size ordering only kicks in at much larger n; see table1).
    assert!(
        run.kept.edge_count() < graph.edge_count(),
        "nothing was dropped: {}/{}",
        run.kept.edge_count(),
        graph.edge_count()
    );
}

#[test]
fn k2_pipeline_on_mesh() {
    use lca::core::K2Spanner;
    let graph = RegularBuilder::new(300, 4)
        .seed(Seed::new(5))
        .build()
        .unwrap();
    let counter = CountingOracle::new(&graph);
    let lca = K2Spanner::with_defaults(&counter, 2, Seed::new(6));
    let run = measure_queries(&graph, &counter, &lca).unwrap();
    let verdict = verify_spanner(&graph, &run.kept, lca.stretch_bound());
    assert!(verdict.holds(), "verdict {verdict:?}");
}

#[test]
fn distinct_probe_accounting_is_never_larger_than_raw() {
    let graph = GnpBuilder::new(150, 0.2).seed(Seed::new(7)).build();
    let counter = CountingOracle::new(&graph);
    let memo = MemoOracle::new(&counter);
    let lca = ThreeSpanner::with_defaults(&memo, Seed::new(8));
    let mut checked = 0;
    for (u, v) in graph.edges().take(30) {
        memo.clear();
        let before = counter.counts().total();
        lca.contains(u, v).unwrap();
        let raw = counter.counts().total() - before;
        let distinct = memo.distinct_probes() as u64;
        assert!(distinct <= raw, "distinct {distinct} > raw {raw}");
        checked += 1;
    }
    assert_eq!(checked, 30);
}

#[test]
fn spanner_lcas_compose_with_classic_lcas() {
    // Sparsify first, then schedule on the spanner — a realistic composed
    // pipeline exercising lca-core + lca-classic + lca-graph together.
    let graph = GnpBuilder::new(200, 0.1).seed(Seed::new(9)).build();
    let lca = ThreeSpanner::with_defaults(&graph, Seed::new(10));
    let spanner = lca::core::materialize(&graph, &lca).unwrap();
    // Rebuild the spanner as a first-class Graph to feed the MIS LCA.
    let mut b = lca::graph::GraphBuilder::new(graph.vertex_count());
    for (u, v) in spanner.edges() {
        b = b.edge(u.index(), v.index());
    }
    let sub = b.build().unwrap();
    let mis = lca::classic::MisLca::new(&sub, Seed::new(11));
    let members = sub.vertices().filter(|&v| mis.contains(v)).count();
    assert!(members > 0);
}

#[test]
fn any_valid_spanner_keeps_bridges() {
    // On a D⁻ lower-bound instance the designated edge is a bridge: every
    // finite-stretch spanner must keep it.
    let inst = lca::lowerbound::sample_dminus(102, 3, Seed::new(12)).unwrap();
    let lca3 = ThreeSpanner::with_defaults(&inst.graph, Seed::new(13));
    assert!(lca3.contains(inst.x, inst.y).unwrap());
    let lca5 = FiveSpanner::with_defaults(&inst.graph, Seed::new(14));
    assert!(lca5.contains(inst.x, inst.y).unwrap());
    use lca::core::K2Spanner;
    let lcak = K2Spanner::with_defaults(&inst.graph, 2, Seed::new(15));
    assert!(lcak.contains(inst.x, inst.y).unwrap());
}

#[test]
fn dumbbell_bridge_is_kept_by_all_spanners() {
    // Same invariant on a deterministic topology.
    let g = lca::graph::gen::structured::dumbbell(30, 0);
    // The bridge is the unique edge between the cliques.
    let bridge = g
        .edges()
        .find(|&(u, v)| u.index() < 30 && v.index() >= 30)
        .unwrap();
    let lca3 = ThreeSpanner::with_defaults(&g, Seed::new(16));
    assert!(lca3.contains(bridge.0, bridge.1).unwrap());
    let lca5 = FiveSpanner::with_defaults(&g, Seed::new(17));
    assert!(lca5.contains(bridge.0, bridge.1).unwrap());
}
