//! Acceptance tests for the budgeted-query redesign.
//!
//! The contract, at every layer: a query that would exceed its probe
//! budget returns `LcaError::BudgetExhausted` — typed, never a hang or a
//! panic — and an unlimited `QueryCtx` reproduces the pre-budget answers
//! and probe counts bit-for-bit. All seven registered algorithms are
//! exercised; exhaustion thresholds are checked *exactly* (budget = cost
//! succeeds, budget = cost − 1 trips).

use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};

use lca::prelude::*;

fn graph() -> Graph {
    GnpBuilder::new(256, 0.08).seed(Seed::new(41)).build()
}

/// One in-range query per kind (the first edge / the first vertex).
fn probe_queries(g: &Graph, kind: AlgorithmKind) -> Vec<DynQuery> {
    LcaBuilder::new(kind)
        .queries(g, QuerySource::sample(24, Seed::new(7)))
        .into_iter()
        .collect()
}

#[test]
fn unlimited_ctx_reproduces_answers_and_probe_totals_bit_for_bit() {
    let g = graph();
    for kind in AlgorithmKind::all() {
        let queries = probe_queries(&g, kind);

        // Legacy path: plain query() over a counting oracle.
        let counter = CountingOracle::new(&g);
        let plain = LcaBuilder::new(kind).seed(Seed::new(3)).build(&counter);
        let legacy: Vec<_> = queries.iter().map(|&q| plain.query(q)).collect();
        let legacy_probes = counter.counts();

        // Budgeted path with an unlimited ctx: fresh instance, same seed.
        let counter2 = CountingOracle::new(&g);
        let budgeted = LcaBuilder::new(kind).seed(Seed::new(3)).build(&counter2);
        let mut ctx_spent = 0u64;
        let via_ctx: Vec<_> = queries
            .iter()
            .map(|&q| {
                let ctx = QueryCtx::unlimited();
                let a = budgeted.query_ctx(q, &ctx);
                ctx_spent += ctx.spent();
                a
            })
            .collect();

        assert_eq!(via_ctx, legacy, "{kind}: answers diverged");
        // Same probe transcript length through the oracle stack…
        assert_eq!(
            counter2.counts(),
            legacy_probes,
            "{kind}: probe totals diverged"
        );
        // …and the ctx meter agrees with the oracle-level counter exactly:
        // one shared meter, charged once per probe at the top of the stack.
        assert_eq!(
            ctx_spent,
            legacy_probes.total(),
            "{kind}: ctx meter disagrees with CountingOracle"
        );
    }
}

#[test]
fn exhaustion_threshold_is_exact_for_every_kind() {
    let g = graph();
    for kind in AlgorithmKind::all() {
        let q = probe_queries(&g, kind)[0];

        // Cost of a cold query, measured by the ctx meter.
        let cold = LcaBuilder::new(kind).seed(Seed::new(3)).build(&g);
        let ctx = QueryCtx::unlimited();
        let answer = cold.query_ctx(q, &ctx).expect("in-range query");
        let cost = ctx.spent();
        assert!(cost >= 1, "{kind}: queries must probe");

        // Budget = cost: a fresh instance answers identically and spends
        // exactly the same probes.
        let exact = LcaBuilder::new(kind).seed(Seed::new(3)).build(&g);
        let ctx = QueryCtx::with_probe_limit(cost);
        assert_eq!(exact.query_ctx(q, &ctx), Ok(answer), "{kind}");
        assert_eq!(ctx.spent(), cost, "{kind}");

        // Budget = cost − 1: a fresh instance trips, typed, with the spent
        // meter pinned at the limit.
        let starved = LcaBuilder::new(kind).seed(Seed::new(3)).build(&g);
        let ctx = QueryCtx::with_probe_limit(cost - 1);
        assert_eq!(
            starved.query_ctx(q, &ctx),
            Err(LcaError::BudgetExhausted {
                spent: cost - 1,
                limit: cost - 1,
            }),
            "{kind}"
        );
    }
}

#[test]
fn exhausted_queries_never_poison_classic_memos() {
    // Run a query under a starving budget, then the same query unlimited:
    // the answer must equal a never-starved instance's answer (partial
    // walks must not persist wrong decisions in the cross-query memo).
    let g = graph();
    for kind in [
        AlgorithmKind::Classic(ClassicKind::Mis),
        AlgorithmKind::Classic(ClassicKind::Matching),
        AlgorithmKind::Classic(ClassicKind::VertexCover),
        AlgorithmKind::Classic(ClassicKind::Coloring),
    ] {
        let queries = probe_queries(&g, kind);
        let fresh = LcaBuilder::new(kind).seed(Seed::new(3)).build(&g);
        let reference: Vec<_> = queries.iter().map(|&q| fresh.query(q).unwrap()).collect();

        let stressed = LcaBuilder::new(kind).seed(Seed::new(3)).build(&g);
        for limit in [1u64, 2, 3, 5, 8] {
            for &q in &queries {
                let ctx = QueryCtx::with_probe_limit(limit);
                match stressed.query_ctx(q, &ctx) {
                    Ok(_) | Err(LcaError::BudgetExhausted { .. }) => {}
                    Err(e) => panic!("{kind}: unexpected error {e}"),
                }
            }
        }
        let after: Vec<_> = queries
            .iter()
            .map(|&q| stressed.query(q).unwrap())
            .collect();
        assert_eq!(after, reference, "{kind}: memo poisoned by starved walks");
    }
}

#[test]
fn budget_surfaces_through_engine_batches() {
    let g = graph();
    let kind = AlgorithmKind::Spanner(SpannerKind::Five);
    let algo = LcaBuilder::new(kind).seed(Seed::new(5)).build(&g);
    let queries = kind.queries(&g);
    let engine = QueryEngine::with_threads(3);

    let unlimited = engine.query_batch_budgeted(&algo, &queries, &QueryBudget::unlimited());
    assert_eq!(unlimited.exhausted, 0);
    assert_eq!(unlimited.answers, engine.query_batch(&algo, &queries));

    let cap = unlimited
        .per_shard
        .iter()
        .map(|s| s.per_query_max)
        .max()
        .unwrap()
        / 2;
    let capped = engine.query_batch_budgeted(&algo, &queries, &QueryBudget::max_probes(cap));
    assert!(capped.exhausted > 0, "cap {cap} starved nothing");
    assert!(capped.exhausted < queries.len(), "cap {cap} starved all");
    assert!((0.0..=1.0).contains(&capped.exhaustion_rate()));
    // Per-query: either the unlimited answer or a typed budget error.
    for (got, want) in capped.answers.iter().zip(&unlimited.answers) {
        match got {
            Ok(a) => assert_eq!(Ok(*a), *want),
            Err(e) => assert!(e.is_budget(), "unexpected error {e}"),
        }
    }
    let shard_exhausted: usize = capped.per_shard.iter().map(|s| s.exhausted).sum();
    assert_eq!(shard_exhausted, capped.exhausted);
}

#[test]
fn builder_default_budget_governs_plain_queries_only() {
    let g = graph();
    let kind = AlgorithmKind::Spanner(SpannerKind::Three);
    let q = probe_queries(&g, kind)[0];

    let capped = LcaBuilder::new(kind)
        .seed(Seed::new(3))
        .max_probes(1)
        .build(&g);
    // Plain query(): the configured default budget applies.
    assert!(matches!(
        capped.query(q),
        Err(LcaError::BudgetExhausted { limit: 1, .. })
    ));
    // An explicit context always wins over the default.
    let ctx = QueryCtx::unlimited();
    let answer = capped.query_ctx(q, &ctx).expect("unlimited ctx wins");
    let unbudgeted = LcaBuilder::new(kind).seed(Seed::new(3)).build(&g);
    assert_eq!(unbudgeted.query(q), Ok(answer));

    // The spanner-typed builder path carries the default too.
    let spanner = LcaBuilder::new(kind)
        .seed(Seed::new(3))
        .max_probes(1)
        .build_spanner(&g)
        .expect("spanner kind");
    let (u, v) = g.edge_endpoints(0);
    assert!(matches!(
        spanner.contains(u, v),
        Err(LcaError::BudgetExhausted { .. })
    ));
    assert_eq!(spanner.stretch_bound(), 3);
}

#[test]
fn budget_sweep_never_panics_and_stays_consistent() {
    // Hammer every algorithm with a Fibonacci ladder of budgets: each
    // outcome must be the true answer or a typed budget error — never a
    // panic, never a wrong answer. K2 runs with a small center constant so
    // multi-vertex Voronoi cells exercise the dense machinery's
    // degenerate-status paths.
    let g = GnpBuilder::new(128, 0.12).seed(Seed::new(77)).build();
    for kind in AlgorithmKind::all() {
        let mut builder = LcaBuilder::new(kind).seed(Seed::new(6));
        if kind == AlgorithmKind::Spanner(SpannerKind::K2) {
            builder = builder.k2_params(K2Params::with_center_constant(128, 2, 3.0));
        }
        let reference = builder.build(&g);
        let queries = probe_queries(&g, kind);
        let expected: Vec<_> = queries
            .iter()
            .map(|&q| reference.query(q).unwrap())
            .collect();

        let stressed = builder.build(&g);
        for (qi, &q) in queries.iter().enumerate() {
            let mut budget = 1u64;
            let mut prev = 1u64;
            loop {
                let ctx = QueryCtx::with_probe_limit(budget);
                match stressed.query_ctx(q, &ctx) {
                    Ok(a) => {
                        assert_eq!(a, expected[qi], "{kind}: wrong answer at budget {budget}");
                        break;
                    }
                    Err(e) if e.is_budget() => {
                        assert!(ctx.spent() <= budget, "{kind}: meter overran its limit");
                    }
                    Err(e) => panic!("{kind}: unexpected error {e} at budget {budget}"),
                }
                let next = budget + prev;
                prev = budget;
                budget = next;
                assert!(budget < 1 << 40, "{kind}: query never fit any budget");
            }
        }
    }
}

#[test]
fn deadlines_and_cancellation_interrupt_with_typed_errors() {
    let g = graph();
    let kind = AlgorithmKind::Spanner(SpannerKind::Five);
    let algo = LcaBuilder::new(kind).seed(Seed::new(5)).build(&g);
    let q = probe_queries(&g, kind)[0];

    // A deadline in the past trips on the first probe.
    let ctx = QueryCtx::new(None, Some(Instant::now() - Duration::from_millis(1)), None);
    assert!(matches!(
        algo.query_ctx(q, &ctx),
        Err(LcaError::DeadlineExceeded { .. })
    ));

    // A pre-set cancellation flag trips before any probe lands.
    let flag = Arc::new(AtomicBool::new(true));
    let ctx = QueryBudget::unlimited().with_cancel(flag).ctx();
    assert!(matches!(
        algo.query_ctx(q, &ctx),
        Err(LcaError::Cancelled { .. })
    ));

    // A generous deadline does not disturb the answer.
    let ctx = QueryBudget::unlimited()
        .with_timeout(Duration::from_secs(60))
        .ctx();
    assert!(algo.query_ctx(q, &ctx).is_ok());
}
