//! Release-mode smoke: serve real query batches on an implicit G(n, c/n)
//! oracle at n = 10⁸ and assert resident memory stays bounded — the proof
//! that nothing in the serving path materializes the graph.
//!
//! Run explicitly (CI does):
//! `cargo test --release --test implicit_smoke -- --ignored`
//!
//! The test is `#[ignore]`d in the default suite because in a debug build
//! the per-probe generator arithmetic is ~20× slower and the point of the
//! test is the memory envelope, not debug-mode throughput.

use lca::core::QueryEngine;
use lca::prelude::*;

/// Peak resident set size (VmHWM) in bytes, if the platform exposes it.
/// Mirrors `lca_bench::peak_rss_bytes`; kept local because depending on
/// `lca-bench` from the facade's tests would create a dev-dependency cycle.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

#[test]
#[ignore = "release-mode smoke job; run via: cargo test --release --test implicit_smoke -- --ignored"]
fn implicit_batches_at_1e8_stay_within_memory_ceiling() {
    const N: usize = 100_000_000;
    // A materialized G(n, 4/n) at this n needs ≥ 4 GB for CSR + position
    // index alone; the ceiling proves we never built one.
    const RSS_CEILING: u64 = 1 << 30; // 1 GiB

    let oracle = ImplicitGnp::new(N, 4.0, Seed::new(0x10E8));
    let engine = QueryEngine::new();

    // 1k-query MIS batch.
    let mis_kind = AlgorithmKind::Classic(ClassicKind::Mis);
    let mis = LcaBuilder::new(mis_kind).seed(Seed::new(1)).build(&oracle);
    let mis_queries = mis_kind.queries_from(&oracle, QuerySource::sample(1_000, Seed::new(2)));
    assert_eq!(mis_queries.len(), 1_000);
    let answers = engine.query_batch(&mis, &mis_queries);
    assert!(answers.iter().all(|a| a.is_ok()), "MIS batch had failures");
    let in_mis = answers.iter().filter(|a| **a == Ok(true)).count();
    assert!(in_mis > 0, "1000 sampled vertices and none in the MIS");

    // 1k-query spanner batch.
    let sp_kind = AlgorithmKind::Spanner(SpannerKind::Three);
    let spanner = LcaBuilder::new(sp_kind).seed(Seed::new(3)).build(&oracle);
    let sp_queries = sp_kind.queries_from(&oracle, QuerySource::sample(1_000, Seed::new(4)));
    assert_eq!(sp_queries.len(), 1_000);
    let answers = engine.query_batch(&spanner, &sp_queries);
    assert!(
        answers.iter().all(|a| a.is_ok()),
        "spanner batch had failures"
    );
    // At average degree 4 ≪ √n every edge is low-class: all kept.
    assert!(answers.iter().all(|a| *a == Ok(true)));

    match peak_rss_bytes() {
        Some(rss) => assert!(
            rss < RSS_CEILING,
            "peak RSS {rss} bytes exceeds the {RSS_CEILING}-byte ceiling — something materialized"
        ),
        None => eprintln!("VmHWM unavailable on this platform; RSS ceiling not enforced"),
    }
}
