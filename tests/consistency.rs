//! Cross-crate consistency: every spanner LCA must agree edge-for-edge with
//! its global reference construction, under adversarial labels and
//! adjacency orders, and its answers must be independent of query order and
//! orientation (Definition 1.4).

use lca::core::global::{five_spanner_global, k2_spanner_global, three_spanner_global};
use lca::core::verify::assert_query_consistency;
use lca::core::{
    FiveSpanner, FiveSpannerParams, K2Params, K2Spanner, ThreeSpanner, ThreeSpannerParams,
};
use lca::prelude::*;

fn key(u: VertexId, v: VertexId) -> (u32, u32) {
    if u.raw() < v.raw() {
        (u.raw(), v.raw())
    } else {
        (v.raw(), u.raw())
    }
}

/// An adversarial workload: shuffled labels *and* shuffled adjacency lists.
fn adversarial_graph(n: usize, p: f64, seed: u64) -> Graph {
    GnpBuilder::new(n, p)
        .seed(Seed::new(seed))
        .shuffle_labels(true)
        .shuffle_adjacency(true)
        .build()
}

#[test]
fn three_spanner_consistency_under_adversarial_orders() {
    for s in 0..4u64 {
        let g = adversarial_graph(80, 0.3, s);
        let params = ThreeSpannerParams::for_n(80);
        let seed = Seed::new(500 + s);
        let global = three_spanner_global(&g, &params, seed);
        let lca = ThreeSpanner::new(&g, params, seed);
        for (u, v) in g.edges() {
            assert_eq!(
                lca.contains(u, v).unwrap(),
                global.contains(&key(u, v)),
                "seed {s}, edge {u}-{v}"
            );
        }
        assert_query_consistency(&g, &lca).unwrap();
    }
}

#[test]
fn five_spanner_consistency_under_adversarial_orders() {
    for s in 0..3u64 {
        let g = adversarial_graph(70, 0.3, 40 + s);
        let params = FiveSpannerParams::for_n(70);
        let seed = Seed::new(600 + s);
        let global = five_spanner_global(&g, &params, seed);
        let lca = FiveSpanner::new(&g, params, seed);
        for (u, v) in g.edges() {
            assert_eq!(
                lca.contains(u, v).unwrap(),
                global.contains(&key(u, v)),
                "seed {s}, edge {u}-{v}"
            );
        }
        assert_query_consistency(&g, &lca).unwrap();
    }
}

#[test]
fn k2_spanner_consistency_under_adversarial_orders() {
    for s in 0..2u64 {
        let g = RegularBuilder::new(70, 4)
            .seed(Seed::new(70 + s))
            .shuffle_labels(true)
            .build()
            .unwrap();
        let params = K2Params::for_n(70, 2);
        let seed = Seed::new(700 + s);
        let global = k2_spanner_global(&g, &params, seed);
        let lca = K2Spanner::new(&g, params, seed);
        for (u, v) in g.edges() {
            assert_eq!(
                lca.contains(u, v).unwrap(),
                global.contains(&key(u, v)),
                "seed {s}, edge {u}-{v}"
            );
        }
        assert_query_consistency(&g, &lca).unwrap();
    }
}

#[test]
fn same_seed_same_spanner_different_seed_different_spanner() {
    let g = GnpBuilder::new(90, 0.3).seed(Seed::new(9)).build();
    let params = ThreeSpannerParams::for_n(90);
    let a = three_spanner_global(&g, &params, Seed::new(1));
    let b = three_spanner_global(&g, &params, Seed::new(1));
    assert_eq!(a, b, "same seed must reproduce the same spanner");
    let c = three_spanner_global(&g, &params, Seed::new(2));
    assert_ne!(a, c, "distinct seeds should pick distinct spanners");
}

#[test]
fn probe_counting_does_not_change_answers() {
    // The counting wrapper must be semantically transparent.
    let g = GnpBuilder::new(60, 0.3).seed(Seed::new(3)).build();
    let params = ThreeSpannerParams::for_n(60);
    let plain = ThreeSpanner::new(&g, params.clone(), Seed::new(4));
    let counter = CountingOracle::new(&g);
    let counted = ThreeSpanner::new(&counter, params, Seed::new(4));
    for (u, v) in g.edges() {
        assert_eq!(
            plain.contains(u, v).unwrap(),
            counted.contains(u, v).unwrap()
        );
    }
    assert!(counter.counts().total() > 0);
}
