//! Oracle-conformance harness: the model invariants every `Oracle` — backing
//! store or wrapper — must satisfy, run against all of them.
//!
//! The laws (paper Section 1.4, plus simple-graph well-formedness):
//!
//! 1. `neighbor(v, i)` is `Some` **iff** `i < degree(v)`;
//! 2. `adjacency(v, ·)` is the inverse index of `neighbor(v, ·)`:
//!    `adjacency(v, neighbor(v, i)) == Some(i)` (which also forces adjacency
//!    lists to be duplicate-free);
//! 3. adjacency is symmetric: if `w ∈ Γ(v)` then `v ∈ Γ(w)`, and the
//!    reverse index round-trips;
//! 4. no self-loops: `adjacency(v, v) == None`;
//! 5. handshake parity: `Σ deg(v)` is even.
//!
//! Wrappers must additionally be transparent: same answers as what they
//! wrap. That is checked implicitly by running the same laws against the
//! wrapped and unwrapped forms of one graph.

use lca::prelude::*;

/// Asserts the oracle laws on `o`. Laws 1–4 are checked per vertex (all
/// vertices when `n` is small, a seeded sample otherwise); law 5 needs the
/// full degree sum and is checked only in the exhaustive regime.
fn assert_oracle_laws<O: Oracle>(o: &O, context: &str) {
    let n = o.vertex_count();
    let exhaustive = n <= 4096;
    let vertices: Vec<usize> = if exhaustive {
        (0..n).collect()
    } else {
        let mut rng = Seed::new(0x1A45).stream();
        (0..512)
            .map(|_| rng.next_below(n as u64) as usize)
            .collect()
    };

    let mut degree_sum = 0usize;
    for &vi in &vertices {
        let v = VertexId::new(vi);
        let d = o.degree(v);
        degree_sum += d;

        // Law 1: Some below the degree, ⊥ at and beyond it.
        assert!(
            o.neighbor(v, d).is_none(),
            "{context}: neighbor({v}, deg) should be ⊥"
        );
        assert!(
            o.neighbor(v, d + 7).is_none(),
            "{context}: neighbor({v}, deg+7) should be ⊥"
        );

        // Law 4: no self-loops.
        assert_eq!(o.adjacency(v, v), None, "{context}: self-loop at {v}");

        for i in 0..d {
            let w = o
                .neighbor(v, i)
                .unwrap_or_else(|| panic!("{context}: neighbor({v}, {i}) = ⊥ below degree {d}"));
            assert_ne!(w, v, "{context}: self-loop via neighbor({v}, {i})");

            // Law 2: adjacency is the inverse index of neighbor.
            assert_eq!(
                o.adjacency(v, w),
                Some(i),
                "{context}: adjacency({v}, {w}) is not the inverse of neighbor({v}, {i})"
            );

            // Law 3: symmetry, with a round-tripping reverse index.
            let back = o.adjacency(w, v).unwrap_or_else(|| {
                panic!("{context}: edge {v}-{w} present forwards, absent backwards")
            });
            assert_eq!(
                o.neighbor(w, back),
                Some(v),
                "{context}: reverse index of {v} in Γ({w}) does not round-trip"
            );
        }
    }

    // Law 5: handshake parity (full enumeration only).
    if exhaustive {
        assert_eq!(degree_sum % 2, 0, "{context}: odd degree sum {degree_sum}");
    }
}

#[test]
fn graph_satisfies_the_laws() {
    let g = GnpBuilder::new(300, 0.05).seed(Seed::new(1)).build();
    assert_oracle_laws(&g, "Graph[gnp]");
    let dense = lca::graph::gen::structured::complete(40);
    assert_oracle_laws(&dense, "Graph[complete]");
}

#[test]
fn accounting_wrappers_satisfy_the_laws() {
    let g = GnpBuilder::new(300, 0.05).seed(Seed::new(2)).build();
    assert_oracle_laws(&CountingOracle::new(&g), "CountingOracle");
    assert_oracle_laws(&MemoOracle::new(&g), "MemoOracle");
    assert_oracle_laws(&CachedOracle::new(&g), "CachedOracle");
    // A bounded cache must stay law-abiding through evictions.
    assert_oracle_laws(
        &CachedOracle::with_shards(&g, 4, Some(64)),
        "CachedOracle[bounded]",
    );
    // And the full serving stack composes.
    let counted = CountingOracle::new(&g);
    let cached = CachedOracle::new(&counted);
    assert_oracle_laws(
        &MemoOracle::new(&cached),
        "MemoOracle<CachedOracle<CountingOracle>>",
    );
}

#[test]
fn implicit_oracles_satisfy_the_laws() {
    let seed = Seed::new(0x0B5);
    assert_oracle_laws(&ImplicitRegular::new(501, 4, seed), "ImplicitRegular");
    assert_oracle_laws(&ImplicitGnp::new(800, 3.5, seed), "ImplicitGnp");
    assert_oracle_laws(
        &ImplicitChungLu::power_law(800, 2.4, 6.0, seed),
        "ImplicitChungLu",
    );
    assert_oracle_laws(&ImplicitGrid::new(17, 23), "ImplicitGrid");
    assert_oracle_laws(&ImplicitTorus::new(9, 14), "ImplicitTorus");
    assert_oracle_laws(&ImplicitHypercube::new(8), "ImplicitHypercube");
}

#[test]
fn implicit_oracles_satisfy_the_laws_at_unmaterializable_scale() {
    // Sampled-vertex regime: the laws hold pointwise on graphs whose
    // adjacency could never be stored.
    let seed = Seed::new(0xB16);
    assert_oracle_laws(
        &ImplicitGnp::new(200_000_000, 4.0, seed),
        "ImplicitGnp[2e8]",
    );
    assert_oracle_laws(
        &ImplicitRegular::new(200_000_000, 5, seed),
        "ImplicitRegular[2e8]",
    );
    assert_oracle_laws(
        &ImplicitChungLu::power_law(200_000_000, 2.5, 6.0, seed),
        "ImplicitChungLu[2e8]",
    );
    assert_oracle_laws(&ImplicitGrid::new(20_000, 10_000), "ImplicitGrid[2e8]");
    assert_oracle_laws(&ImplicitTorus::new(20_000, 10_000), "ImplicitTorus[2e8]");
    assert_oracle_laws(&ImplicitHypercube::new(27), "ImplicitHypercube[2^27]");
}

#[test]
fn materialized_implicit_graphs_satisfy_the_laws_too() {
    let seed = Seed::new(0x3A7);
    let o = ImplicitGnp::new(600, 4.0, seed);
    assert_oracle_laws(&o.materialize(), "materialize(ImplicitGnp)");
    let o = ImplicitChungLu::power_law(600, 2.6, 5.0, seed);
    assert_oracle_laws(&o.materialize(), "materialize(ImplicitChungLu)");
}
