//! Scenario: on-demand conflict scheduling with the classic LCAs.
//!
//! Jobs conflict pairwise (shared resources); a maximal independent set of
//! the conflict graph is a valid schedule round. With millions of jobs, no
//! scheduler wants to materialize the MIS — each job asks "am I in this
//! round?" locally, and all answers are consistent with one global MIS.
//! The same machinery yields a maximal matching (pairwise work exchange)
//! and a 2-approximate vertex cover (minimal monitor placement).
//!
//! Run: `cargo run --release --example conflict_scheduling`

// Stdout is this target's output channel; the print ban is for library code.
#![allow(clippy::print_stdout)]
use lca::classic::{MatchingLca, MisLca, VertexCoverLca};
use lca::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Conflict graph: clustered — jobs conflict heavily inside teams,
    // lightly across teams.
    let graph = lca::graph::gen::structured::clustered(40, 25, 0.3, 0.002, Seed::new(3))?;
    println!(
        "conflict graph: {} jobs, {} conflicts",
        graph.vertex_count(),
        graph.edge_count()
    );

    let seed = Seed::new(0x5EED);
    let oracle = CountingOracle::new(&graph);
    let mis = MisLca::new(&oracle, seed);

    // A few jobs ask about their own scheduling, independently.
    for job in [0usize, 100, 500, 999] {
        let v = VertexId::new(job);
        let scope = oracle.scoped();
        let scheduled = mis.contains(v);
        println!(
            "job {job}: {} ({} probes)",
            if scheduled { "RUN this round" } else { "wait" },
            scope.cost().total()
        );
    }

    // Verify the global set the answers describe really is a valid round.
    // The full sweep goes through the QueryEngine: queries are independent
    // (Definition 1.4), so the engine shards them across threads.
    let engine = QueryEngine::new();
    let all_jobs: Vec<VertexId> = graph.vertices().collect();
    let scheduled: Vec<VertexId> = all_jobs
        .iter()
        .zip(engine.query_batch(&mis, &all_jobs))
        .filter_map(|(&v, in_round)| in_round.unwrap().then_some(v))
        .collect();
    for &v in &scheduled {
        assert!(graph.neighbors(v).iter().all(|&w| !mis.contains(w)));
    }
    println!(
        "scheduled {} jobs; independence verified ({} engine threads)",
        scheduled.len(),
        engine.threads()
    );

    // Pairwise work exchange: maximal matching.
    let mm = MatchingLca::new(&graph, seed);
    let pairs = graph.edges().filter(|&(u, v)| mm.contains(u, v)).count();
    println!("work-exchange pairs (maximal matching): {pairs}");

    // Monitor placement: 2-approximate vertex cover.
    let vc = VertexCoverLca::new(&graph, seed);
    let monitors = graph.vertices().filter(|&v| vc.contains(v)).count();
    println!("monitors (2-approx vertex cover): {monitors} = 2 × {pairs}");
    Ok(())
}
