//! Demo of the Section 6 lower bound: why sublinear spanner LCAs cannot
//! keep o(m) edges with too few probes.
//!
//! We sample graphs from the paper's D⁺ (designated edge redundant) and D⁻
//! (designated edge is a bridge) families and watch a probe-budgeted tester
//! fail to tell them apart until its budget crosses ~√n.
//!
//! Run: `cargo run --release --example lower_bound_demo`

// Stdout is this target's output channel; the print ban is for library code.
#![allow(clippy::print_stdout)]
use lca::lowerbound::{
    bounded_reachability_accepts, distinguishing_experiment, sample_dminus, sample_dplus,
};
use lca::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (n, d) = (402usize, 3usize);
    println!("instances: n = {n}, d = {d} (d-regular, designated edge 0–1)\n");

    // One concrete pair of instances.
    let plus = sample_dplus(n, d, Seed::new(1))?;
    let minus = sample_dminus(n, d, Seed::new(2))?;
    for (name, inst) in [("D+", &plus), ("D-", &minus)] {
        let oracle = CountingOracle::new(&inst.graph);
        let verdict = bounded_reachability_accepts(&oracle, inst.x, inst.y, 1_000_000);
        println!(
            "{name}: unbounded tester says x–y {} without the designated edge \
             (truth: {})",
            if verdict {
                "stay connected"
            } else {
                "disconnect"
            },
            if inst.connected_without_edge {
                "connected"
            } else {
                "disconnected"
            }
        );
    }

    // The budget sweep: advantage ≈ 0 below the threshold, → 1 above it.
    println!("\nbudget sweep (advantage = |Pr_D+[accept] − Pr_D-[accept]|):");
    let threshold = (n as f64).sqrt().min(n as f64 / d as f64);
    for budget in [
        2u64,
        5,
        threshold as u64,
        10 * threshold as u64,
        1_000,
        50_000,
    ] {
        let o = distinguishing_experiment(n, d, budget, 16, Seed::new(42));
        println!(
            "  budget {budget:>6}: advantage {:.2}   (threshold min(√n, n/d) ≈ {threshold:.0})",
            o.advantage()
        );
    }
    println!(
        "\nAny LCA answering with o(m) edges kept must implicitly make this distinction \
         on the designated edge — hence Ω(min(√n, n²/m)) probes (Theorem 1.3)."
    );
    Ok(())
}
