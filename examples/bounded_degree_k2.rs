//! Scenario: sparsifying a bounded-degree mesh with the O(k²)-spanner LCA.
//!
//! Sensor meshes and NoC-style topologies have small maximum degree; the
//! Theorem 1.2 construction gives Õ(n^{1+1/k}) edges with stretch O(k²) and
//! probes polynomial in ∆ — this example walks through its moving parts
//! (sparse/dense partition, Voronoi cells, cluster refinement) on a torus.
//!
//! Run: `cargo run --release --example bounded_degree_k2`

// Stdout is this target's output channel; the print ban is for library code.
#![allow(clippy::print_stdout)]
use lca::core::global::k2_partition;
use lca::core::{K2Params, K2Spanner};
use lca::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = RegularBuilder::new(1_500, 4).seed(Seed::new(5)).build()?;
    let k = 2;
    let seed = Seed::new(99);
    // Demo-scale center constant: the paper's Θ(log n)/L sampling rate
    // saturates to 1 below n ≈ 10⁵ (see the method docs).
    let params = K2Params::with_center_constant(graph.vertex_count(), k, 3.0);
    println!(
        "mesh: n = {}, ∆ = {}, k = {k}, L = {}, q = {}",
        graph.vertex_count(),
        graph.max_degree(),
        params.l,
        params.q
    );

    // Peek at the dense partition the LCA implicitly maintains.
    let part = k2_partition(&graph, &params, seed);
    println!(
        "partition: {} sparse vertices, {} Voronoi cells, {} clusters",
        part.sparse_count(),
        part.cell_count(),
        part.cluster_members.len()
    );

    // Query through the probe-counting oracle.
    let oracle = CountingOracle::new(&graph);
    let lca = K2Spanner::new(&oracle, params, seed);
    let mut kept = 0usize;
    let mut max_probes = 0u64;
    let sample = 200;
    for i in 0..sample {
        let (u, v) = graph.edge_endpoints((i * 131) % graph.edge_count());
        let scope = oracle.scoped();
        kept += usize::from(lca.contains(u, v)?);
        max_probes = max_probes.max(scope.cost().total());
    }
    println!(
        "sampled {sample} edge queries: {kept} kept, worst query used {max_probes} probes \
         (graph has {} edges)",
        graph.edge_count()
    );

    // Inspect one vertex's local world.
    let v = VertexId::new(0);
    match lca.vertex_status(v) {
        lca::core::k2::VertexStatus::Sparse { discovered } => {
            println!("vertex {v}: sparse (ball of {discovered} vertices, handled by Baswana–Sen)")
        }
        lca::core::k2::VertexStatus::Dense {
            center,
            path,
            discovered,
        } => println!(
            "vertex {v}: dense — cell center {center} at distance {}, found after {discovered} discoveries",
            path.len() - 1
        ),
    }
    Ok(())
}
