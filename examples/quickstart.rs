//! Quickstart: build any LCA through the registry, serve queries through
//! the engine — over a graph you never fully read — then keep it serving
//! as a daemon.
//!
//! Run: `cargo run --release --example quickstart`
//!
//! The tour below is the whole API in four steps:
//!
//! 1. **Construct** — `LcaBuilder::new(kind).seed(s).build(&oracle)` builds
//!    any of the seven registered algorithms ([`AlgorithmKind`]) over any
//!    probe oracle, materialized or implicit.
//! 2. **Query** — one at a time via `query(DynQuery)`, or batched and
//!    thread-parallel via [`QueryEngine::query_batch`].
//! 3. **Scale** — swap the `Graph` for an implicit oracle
//!    ([`ImplicitGnp`], or any [`lca::family::ImplicitFamily`]) and the same
//!    two lines serve a billion-vertex input; [`QuerySource`] samples valid
//!    queries straight off the oracle in O(1) probes each.
//! 4. **Budget** — give any query a [`QueryCtx`] (probe cap, deadline,
//!    cancellation) and over-budget queries fail *typed* instead of
//!    running long; see "Budgeted queries" below.
//! 5. **Serve** — `lca-serve` keeps built instances resident behind a
//!    newline-JSON protocol and `lca-loadgen` drives it; see "Serving as a
//!    daemon" at the bottom.
//!
//! The crate map and query lifecycle are documented in
//! `docs/ARCHITECTURE.md`; the wire protocol in `docs/PROTOCOL.md`.
//!
//! Migration note: before the unified API you would construct each
//! algorithm through its own constructor (`ThreeSpanner::with_defaults`,
//! `MisLca::new`, …) and loop `contains` by hand. Those constructors still
//! work, but the registry builds all seven algorithms from one
//! `(oracle, kind, seed)` shape, and `QueryEngine` batches and parallelizes
//! the queries for you.

// Stdout is this target's output channel; the print ban is for library code.
#![allow(clippy::print_stdout)]
use lca::core::DynQuery;
use lca::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A dense random graph: 2 000 vertices, ~250 000 edges.
    let n = 2_000;
    let graph = GnpBuilder::new(n, 0.125).seed(Seed::new(7)).build();
    println!(
        "input: n = {}, m = {}, max degree = {}",
        graph.vertex_count(),
        graph.edge_count(),
        graph.max_degree()
    );

    // Wrap the graph in a probe-counting oracle — the LCA may only access
    // the graph through Neighbor/Degree/Adjacency probes.
    let oracle = CountingOracle::new(&graph);
    let kind = AlgorithmKind::Spanner(SpannerKind::Three);
    let lca = LcaBuilder::new(kind).seed(Seed::new(42)).build(&oracle);
    println!(
        "algorithm: {} (probe bound {})",
        lca.name(),
        lca.probe_bound()
    );

    // Query a handful of edges, as if a distributed application were asking
    // "should I keep this link?" on demand.
    let mut kept = 0;
    let queries = 20;
    for i in 0..queries {
        let (u, v) = graph.edge_endpoints(i * 97 % graph.edge_count());
        let scope = oracle.scoped();
        let in_spanner = lca.query(DynQuery::Edge(u, v))?;
        kept += usize::from(in_spanner);
        println!(
            "edge {u}-{v}: {}  ({} probes)",
            if in_spanner { "KEEP" } else { "drop" },
            scope.cost().total()
        );
    }
    println!("\n{kept}/{queries} sampled edges kept");

    // Under load you would not loop: hand the whole batch to the engine,
    // which shards it across threads (sound because every answer is a pure
    // function of (graph, seed, query) — Definition 1.4).
    let engine = QueryEngine::new();
    let batch = kind.queries(&graph); // every edge of the graph
    let answers = engine.query_batch(&lca, &batch);
    let in_spanner = answers.into_iter().filter(|a| *a == Ok(true)).count();
    let total = oracle.counts();
    println!(
        "batched over {} threads: spanner keeps {}/{} edges ({:.1}%)",
        engine.threads(),
        in_spanner,
        graph.edge_count(),
        100.0 * in_spanner as f64 / graph.edge_count() as f64
    );
    println!(
        "total probes: {} ({:.0} per query) — each answer read a vanishing \
         fraction of the {} adjacency-list entries",
        total.total(),
        total.total() as f64 / graph.edge_count() as f64,
        2 * graph.edge_count()
    );

    // The same two lines serve any registered algorithm, e.g. a maximal
    // independent set on the same graph.
    let mis_kind = AlgorithmKind::Classic(ClassicKind::Mis);
    let mis = LcaBuilder::new(mis_kind).seed(Seed::new(42)).build(&graph);
    let members = engine
        .query_batch(&mis, &mis_kind.queries(&graph))
        .into_iter()
        .filter(|a| *a == Ok(true))
        .count();
    println!("{}: {members} of {n} vertices are in the set", mis.name());

    // Query a billion-vertex graph
    // ----------------------------
    // Everything above still reads the whole graph once — to *generate* it.
    // The implicit oracles drop that last O(n) step: the input below is a
    // sparse random graph on 10⁹ vertices defined entirely by its seed, and
    // every probe recomputes its slice of the adjacency on demand. No
    // memory is spent on the graph, so n is limited only by the 32-bit
    // vertex handle.
    let big_n = 1_000_000_000;
    let oracle = ImplicitGnp::new(big_n, 3.0, Seed::new(1));
    let counted = CountingOracle::new(&oracle);
    let builder = LcaBuilder::new(mis_kind).seed(Seed::new(42));
    let big_mis = builder.build(&counted);
    // No `Graph` to enumerate queries from: sample them straight off the
    // oracle through a QuerySource (O(1) probes per drawn query).
    let queries = builder.queries(&oracle, QuerySource::sample(16, Seed::new(2)));
    let in_set = engine
        .query_batch(&big_mis, &queries)
        .into_iter()
        .filter(|a| *a == Ok(true))
        .count();
    println!(
        "implicit G(10^9, 3/10^9): {in_set}/16 sampled vertices in the MIS \
         ({} probes total — the other ~{}B adjacency entries were never generated)",
        counted.counts().total(),
        3 * big_n / 1_000_000_000,
    );

    // Budgeted queries
    // ----------------
    // The paper's headline guarantee is a *per-query* probe bound; the
    // QueryCtx makes it enforceable. Give a query an explicit context and
    // the probe that would exceed the budget is refused: the query returns
    // a typed `LcaError::BudgetExhausted` instead of running long — the
    // tail-latency contract a serve worker relies on.
    let ctx = QueryCtx::unlimited();
    let q = queries[0];
    big_mis.query_ctx(q, &ctx)?;
    let cost = ctx.spent(); // the unified per-query meter
    let starved = QueryCtx::with_probe_limit(cost.saturating_sub(1).max(1));
    match builder.build(&oracle).query_ctx(q, &starved) {
        Err(LcaError::BudgetExhausted { spent, limit }) => {
            println!("budget {limit}: refused after {spent} probes (typed, no hang)")
        }
        other => println!("within budget: {other:?}"),
    }
    // Budgets compose at every layer: per-instance defaults
    // (`LcaBuilder::max_probes` — plain `query()` calls inherit them),
    // per-batch (`QueryEngine::query_batch_budgeted`, with per-shard
    // exhaustion stats), and per-request on the wire (`max_probes` /
    // `deadline_ms` fields, `budget-exhausted` error code).
    let capped =
        engine.query_batch_budgeted(&big_mis, &queries, &QueryBudget::max_probes(cost.max(1)));
    println!(
        "budgeted batch: {}/{} answered, {} exhausted ({:.0}% — each retryable with a larger budget)",
        capped.answers.iter().filter(|a| a.is_ok()).count(),
        capped.answers.len(),
        capped.exhausted,
        100.0 * capped.exhaustion_rate()
    );
    //
    // Migration note: `Lca::query_ctx(q, &ctx)` is the required method now;
    // `query(q)` remains as the unlimited shorthand, so pre-budget call
    // sites compile and behave identically (same answers, same probe
    // transcripts). Implementors of the old `fn query` provide
    // `fn query_ctx` instead and charge probes via `ctx.budgeted(&oracle)`.

    // Serving as a daemon
    // -------------------
    // Everything above lives and dies with this process. The `lca-serve`
    // daemon keeps built instances resident and answers a newline-JSON
    // protocol over TCP (spec: docs/PROTOCOL.md), with per-session serving
    // caches, backpressure, and a stats endpoint:
    //
    //   cargo run --release -p lca-serve --bin lca-serve -- --addr 127.0.0.1:7400
    //   printf '%s\n' \
    //     '{"session":"m","kind":"mis","n":1000000,"seed":7,"query":42}' \
    //     | nc 127.0.0.1 7400
    //
    // …and `lca-loadgen` drives it closed- or open-loop, verifying every
    // answer against a direct LcaBuilder query:
    //
    //   cargo run --release -p lca-serve --bin lca-loadgen -- \
    //     --addr 127.0.0.1:7400 --requests 1000 --mix mis,spanner3 \
    //     --n 1000000 --seed 7 --verify --shutdown
    //
    // `engine_report --serve` runs that whole loop in one command.
    println!("\nnext: serve this over TCP — see docs/PROTOCOL.md and `lca-serve`");
    Ok(())
}
