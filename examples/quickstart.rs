//! Quickstart: query a 3-spanner of a graph you never fully read.
//!
//! Run: `cargo run --release --example quickstart`

use lca::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A dense random graph: 2 000 vertices, ~250 000 edges.
    let n = 2_000;
    let graph = GnpBuilder::new(n, 0.125).seed(Seed::new(7)).build();
    println!(
        "input: n = {}, m = {}, max degree = {}",
        graph.vertex_count(),
        graph.edge_count(),
        graph.max_degree()
    );

    // Wrap the graph in a probe-counting oracle — the LCA may only access
    // the graph through Neighbor/Degree/Adjacency probes.
    let oracle = CountingOracle::new(&graph);
    let lca = ThreeSpanner::with_defaults(&oracle, Seed::new(42));

    // Query a handful of edges, as if a distributed application were asking
    // "should I keep this link?" on demand.
    let mut kept = 0;
    let queries = 20;
    for i in 0..queries {
        let (u, v) = graph.edge_endpoints(i * 97 % graph.edge_count());
        let scope = oracle.scoped();
        let in_spanner = lca.contains(u, v)?;
        kept += usize::from(in_spanner);
        println!(
            "edge {u}-{v}: {}  ({} probes)",
            if in_spanner { "KEEP" } else { "drop" },
            scope.cost().total()
        );
    }

    let total = oracle.counts();
    println!("\n{kept}/{queries} sampled edges kept");
    println!(
        "total probes for {queries} queries: {} — the graph has {} edges; \
         we read a vanishing fraction of it",
        total.total(),
        graph.edge_count()
    );
    Ok(())
}
