//! Scenario: spanner-backed overlay routing.
//!
//! A peer-to-peer overlay wants each node to keep only a sparse subset of
//! its links while guaranteeing that any dropped link has a ≤3-hop detour —
//! the textbook use of a 3-spanner. No node can read the whole topology;
//! instead every node asks the LCA about *its own* links, and because all
//! nodes share the same seed, their local decisions assemble into one
//! consistent global spanner.
//!
//! Run: `cargo run --release --example overlay_routing`

// Stdout is this target's output channel; the print ban is for library code.
#![allow(clippy::print_stdout)]
use lca::core::{materialize, ThreeSpanner};
use lca::prelude::*;
use lca::rand::SplitMix64;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The overlay: a dense mesh (think data-center fabric). Degrees land
    // above the n^{3/4} super-high threshold — the regime where the
    // 3-spanner construction bites hardest.
    let graph = GnpBuilder::new(1_200, 0.4).seed(Seed::new(11)).build();
    println!(
        "overlay: {} nodes, {} links, max degree {}",
        graph.vertex_count(),
        graph.edge_count(),
        graph.max_degree()
    );

    let shared_seed = Seed::new(0xCAFE); // broadcast once to all nodes
    let oracle = CountingOracle::new(&graph);
    let lca = ThreeSpanner::with_defaults(&oracle, shared_seed);

    // Node 0 decides which of its links to keep — purely locally.
    let node = VertexId::new(0);
    let mut kept_links = 0usize;
    for &peer in graph.neighbors(node) {
        kept_links += usize::from(lca.contains(node, peer)?);
    }
    println!(
        "node {node}: keeps {kept_links}/{} links, deciding with {} probes total",
        graph.degree(node),
        oracle.counts().total()
    );

    // Sanity-check the *global* picture those local decisions induce
    // (possible here because the demo graph fits in memory). The stretch
    // check samples dropped links; the property tests in `tests/` verify it
    // exhaustively on smaller graphs.
    let spanner = materialize(&graph, &lca)?;
    let omitted: Vec<_> = graph
        .edges()
        .filter(|&(u, v)| !spanner.has_edge(u, v))
        .collect();
    let mut rng = SplitMix64::new(7);
    let mut worst = 0u32;
    for _ in 0..2_000.min(omitted.len()) {
        let (u, v) = omitted[rng.next_below(omitted.len() as u64) as usize];
        let detour = spanner
            .distance_within(u, v, 3)
            .expect("a 3-spanner must offer a ≤3-hop detour");
        worst = worst.max(detour);
    }
    println!(
        "global view: kept {}/{} links ({:.0}%), worst sampled detour = {worst} (bound 3)",
        spanner.edge_count(),
        graph.edge_count(),
        100.0 * spanner.edge_count() as f64 / graph.edge_count() as f64,
    );
    assert!(worst <= 3);
    assert!(
        spanner.edge_count() * 2 < graph.edge_count(),
        "the spanner should drop most links in this regime"
    );
    Ok(())
}
